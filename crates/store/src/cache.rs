//! Content-addressed on-disk cache of sweep artifacts.
//!
//! Every artifact is keyed by a [`CacheKey`] — the full identity of the
//! run that produced it: workload, input kind, scale, profiling mode,
//! threshold, and a caller-provided content fingerprint covering the
//! guest binary, input words, and translator configuration. Any change
//! to a benchmark spec, generator, or config knob changes the
//! fingerprint, so stale entries simply stop being addressed; corrupt
//! entries (checksum, version, or embedded-key mismatches) are deleted
//! and recomputed.
//!
//! Writes go through a temp file plus atomic rename, so a crashed or
//! concurrent sweep can never leave a half-written artifact behind that
//! later decodes successfully. All methods take `&self`; the store is
//! safe to share across the sweep worker pool.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tpdbt_trace::{EventKind, Tracer};

use crate::digest::Fnv64;
use crate::error::StoreError;
use crate::profilefmt::{self, Artifact, BaseArtifact, CellArtifact, PlainArtifact};

/// Identity of one cached run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Benchmark name (e.g. `"mcf"`).
    pub workload: String,
    /// Input kind code (`tpdbt-suite`'s `InputKind`, ref = 0,
    /// train = 1).
    pub input: u8,
    /// Scale code (tiny = 0, small = 1, paper = 2).
    pub scale: u8,
    /// Profiling mode code (`DbtConfig` mode, two-phase = 0,
    /// no-opt = 1, continuous = 2, adaptive = 3).
    pub mode: u8,
    /// Retranslation threshold (0 for modes that ignore it).
    pub threshold: u64,
    /// Content fingerprint of everything else that determines the run:
    /// guest binary, input words, and `DbtConfig::fingerprint()`.
    pub fingerprint: u64,
}

impl CacheKey {
    /// The key's content digest — the artifact's on-disk identity.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.workload.len() as u64);
        h.write(self.workload.as_bytes());
        h.write(&[self.input, self.scale, self.mode]);
        h.write_u64(self.threshold);
        h.write_u64(self.fingerprint);
        h.finish()
    }

    /// The artifact file name: a sanitized human-readable prefix plus
    /// the full key digest.
    #[must_use]
    pub fn file_name(&self) -> String {
        let safe: String = self
            .workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(32)
            .collect();
        format!("{safe}-{:016x}.tpst", self.digest())
    }
}

/// Shared counters for sweep-end reporting.
#[derive(Debug, Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The on-disk artifact store rooted at one cache directory.
#[derive(Debug)]
pub struct ProfileStore {
    dir: PathBuf,
    stats: Stats,
    tracer: Option<Arc<Tracer>>,
}

impl ProfileStore {
    /// Opens (without touching the filesystem) a store rooted at `dir`.
    /// The directory is created on first write.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ProfileStore {
            dir: dir.into(),
            stats: Stats::default(),
            tracer: None,
        }
    }

    /// Attaches a structured-event tracer: every lookup reports
    /// [`EventKind::StoreHit`] / [`EventKind::StoreMiss`] /
    /// [`EventKind::StoreEvicted`] with the artifact file name.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    fn trace_emit(&self, event: impl FnOnce() -> EventKind) {
        if let Some(tracer) = &self.tracer {
            tracer.emit(event());
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Artifacts served from disk so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no (valid) artifact.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    /// Corrupt or mismatched entries deleted during lookups.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.stats.evictions.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Looks up `key`. Returns `None` on a miss; a corrupt, truncated,
    /// foreign, or stale entry is deleted (best-effort) and reported as
    /// a miss.
    #[must_use]
    pub fn load(&self, key: &CacheKey) -> Option<Artifact> {
        let path = self.path_of(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.trace_emit(|| EventKind::StoreMiss {
                    file: key.file_name(),
                });
                return None;
            }
        };
        match profilefmt::decode(&bytes) {
            Ok((digest, artifact)) if digest == key.digest() => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.trace_emit(|| EventKind::StoreHit {
                    file: key.file_name(),
                });
                Some(artifact)
            }
            _ => {
                // Corrupt or written under another key (hash-collision
                // filename or tampering): evict so the slot heals.
                let _ = fs::remove_file(&path);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.trace_emit(|| EventKind::StoreEvicted {
                    file: key.file_name(),
                });
                self.trace_emit(|| EventKind::StoreMiss {
                    file: key.file_name(),
                });
                None
            }
        }
    }

    /// Persists `artifact` under `key` (atomic temp-file + rename).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory or file cannot be written.
    pub fn store(&self, key: &CacheKey, artifact: &Artifact) -> Result<(), StoreError> {
        fs::create_dir_all(&self.dir)?;
        let bytes = profilefmt::encode(key.digest(), artifact);
        let path = self.path_of(key);
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(StoreError::Io(e))
            }
        }
    }

    /// Typed lookup of a plain-profile artifact.
    #[must_use]
    pub fn load_plain(&self, key: &CacheKey) -> Option<PlainArtifact> {
        match self.load(key) {
            Some(Artifact::Plain(p)) => Some(p),
            _ => None,
        }
    }

    /// Typed lookup of a sweep-cell artifact.
    #[must_use]
    pub fn load_cell(&self, key: &CacheKey) -> Option<CellArtifact> {
        match self.load(key) {
            Some(Artifact::Cell(c)) => Some(c),
            _ => None,
        }
    }

    /// Typed lookup of a baseline artifact.
    #[must_use]
    pub fn load_base(&self, key: &CacheKey) -> Option<BaseArtifact> {
        match self.load(key) {
            Some(Artifact::Base(b)) => Some(b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir() -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "tpdbt-store-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn key(threshold: u64) -> CacheKey {
        CacheKey {
            workload: "mcf".to_string(),
            input: 0,
            scale: 0,
            mode: 0,
            threshold,
            fingerprint: 0x1234,
        }
    }

    fn base(cycles: u64) -> Artifact {
        Artifact::Base(BaseArtifact {
            cycles,
            output_digest: 9,
        })
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        assert!(store.load(&key(1)).is_none());
        assert_eq!(store.misses(), 1);

        store.store(&key(1), &base(77)).unwrap();
        let got = store.load_base(&key(1)).unwrap();
        assert_eq!(got.cycles, 77);
        assert_eq!(store.hits(), 1);

        // A different threshold is a different key.
        assert!(store.load(&key(2)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_evicted_and_recomputed() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(5), &base(1)).unwrap();
        let path = store.path_of(&key(5));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load(&key(5)).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(!path.exists(), "corrupt entry must be deleted");

        // The slot heals on the next store.
        store.store(&key(5), &base(2)).unwrap();
        assert_eq!(store.load_base(&key(5)).unwrap().cycles, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_change_addresses_a_fresh_slot() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        let old = key(7);
        store.store(&old, &base(1)).unwrap();
        let new = CacheKey {
            fingerprint: old.fingerprint + 1,
            ..old.clone()
        };
        assert!(store.load(&new).is_none(), "stale entry must not serve");
        assert!(store.load(&old).is_some(), "old entry still addressable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_digest_depends_on_every_field() {
        let base_key = key(1);
        let variants = [
            CacheKey {
                workload: "gcc".into(),
                ..base_key.clone()
            },
            CacheKey {
                input: 1,
                ..base_key.clone()
            },
            CacheKey {
                scale: 1,
                ..base_key.clone()
            },
            CacheKey {
                mode: 1,
                ..base_key.clone()
            },
            CacheKey {
                threshold: 2,
                ..base_key.clone()
            },
            CacheKey {
                fingerprint: 0,
                ..base_key.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.digest(), base_key.digest(), "{v:?}");
        }
    }

    #[test]
    fn lookups_report_trace_events() {
        let dir = scratch_dir();
        let tracer = Arc::new(Tracer::new());
        let store = ProfileStore::new(&dir).with_tracer(Arc::clone(&tracer));
        assert!(store.load(&key(1)).is_none());
        store.store(&key(1), &base(3)).unwrap();
        assert!(store.load(&key(1)).is_some());
        assert_eq!(tracer.count("store_miss"), 1);
        assert_eq!(tracer.count("store_hit"), 1);
        // Corruption reports an eviction and a miss.
        let path = store.path_of(&key(1));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key(1)).is_none());
        assert_eq!(tracer.count("store_evicted"), 1);
        assert_eq!(tracer.count("store_miss"), 2);
        let miss_files: Vec<_> = tracer
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StoreMiss { file } => Some(file.clone()),
                _ => None,
            })
            .collect();
        assert!(miss_files.iter().all(|f| f == &key(1).file_name()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn typed_loads_reject_wrong_kinds() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(3), &base(1)).unwrap();
        assert!(store.load_cell(&key(3)).is_none());
        assert!(store.load_plain(&key(3)).is_none());
        assert!(store.load_base(&key(3)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
