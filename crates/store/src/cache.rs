//! Content-addressed on-disk cache of sweep artifacts.
//!
//! Every artifact is keyed by a [`CacheKey`] — the full identity of the
//! run that produced it: workload, input kind, scale, profiling mode,
//! threshold, and a caller-provided content fingerprint covering the
//! guest binary, input words, and translator configuration. Any change
//! to a benchmark spec, generator, or config knob changes the
//! fingerprint, so stale entries simply stop being addressed; corrupt
//! entries (checksum, version, or embedded-key mismatches) are deleted
//! and recomputed.
//!
//! Writes go through a temp file that is fsynced before an atomic
//! rename (with a best-effort directory sync after), so neither a
//! crashed nor a concurrent sweep can publish a torn artifact. All
//! methods take `&self`; the store is safe to share across the sweep
//! worker pool.
//!
//! Fault tolerance (see DESIGN.md §9):
//!
//! * transient I/O errors (interrupted/timed-out/would-block reads and
//!   writes) are retried up to [`IO_ATTEMPTS`] times with a short
//!   linear backoff before the lookup degrades to a miss;
//! * an entry that decodes corrupt **twice in a row** is moved to a
//!   `quarantine/` subdirectory instead of deleted, and its key is
//!   blocked from being cached again this run — a bad disk sector
//!   therefore costs one recompute per sweep, not a
//!   recompute-corrupt-recompute loop;
//! * with the `fault-injection` feature, an attached
//!   [`FaultPlan`](tpdbt_faults::FaultPlan) can deterministically
//!   inject read/write errors and read corruption to prove all of the
//!   above (without the feature the sites compile out).

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tpdbt_faults::{FaultPlan, FaultSite};
use tpdbt_trace::{EventKind, Tracer};

use crate::digest::Fnv64;
use crate::error::{io_error_is_transient, StoreError};
use crate::profilefmt::{self, Artifact, BaseArtifact, CellArtifact, PlainArtifact, TypedArtifact};

/// Maximum tries for one filesystem operation (1 initial + 2 retries).
pub const IO_ATTEMPTS: u32 = 3;

/// Consecutive corrupt decodes of one key before the entry is
/// quarantined instead of evicted.
pub const QUARANTINE_AFTER: u32 = 2;

/// Linear backoff unit between I/O retries.
const RETRY_BACKOFF: Duration = Duration::from_millis(1);

/// Identity of one cached run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Benchmark name (e.g. `"mcf"`).
    pub workload: String,
    /// Input kind code (`tpdbt-suite`'s `InputKind`, ref = 0,
    /// train = 1).
    pub input: u8,
    /// Scale code (tiny = 0, small = 1, paper = 2).
    pub scale: u8,
    /// Profiling mode code (`DbtConfig` mode, two-phase = 0,
    /// no-opt = 1, continuous = 2, adaptive = 3).
    pub mode: u8,
    /// Retranslation threshold (0 for modes that ignore it).
    pub threshold: u64,
    /// Content fingerprint of everything else that determines the run:
    /// guest binary, input words, and `DbtConfig::fingerprint()`.
    pub fingerprint: u64,
}

impl CacheKey {
    /// The key's content digest — the artifact's on-disk identity.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.workload.len() as u64);
        h.write(self.workload.as_bytes());
        h.write(&[self.input, self.scale, self.mode]);
        h.write_u64(self.threshold);
        h.write_u64(self.fingerprint);
        h.finish()
    }

    /// The artifact file name: a sanitized human-readable prefix plus
    /// the full key digest.
    #[must_use]
    pub fn file_name(&self) -> String {
        let safe: String = self
            .workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(32)
            .collect();
        format!("{safe}-{:016x}.tpst", self.digest())
    }
}

/// Shared counters for sweep-end reporting.
#[derive(Debug, Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    io_retries: AtomicU64,
    quarantined: AtomicU64,
    orphans_swept: AtomicU64,
}

/// The on-disk artifact store rooted at one cache directory.
#[derive(Debug)]
pub struct ProfileStore {
    dir: PathBuf,
    stats: Stats,
    tracer: Option<Arc<Tracer>>,
    faults: Option<Arc<FaultPlan>>,
    /// Consecutive corrupt decodes per key digest; reaching
    /// [`QUARANTINE_AFTER`] blocks the key from the cache this run.
    corruption: Mutex<HashMap<u64, u32>>,
}

impl ProfileStore {
    /// Opens (without touching the filesystem) a store rooted at `dir`.
    /// The directory is created on first write.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ProfileStore {
            dir: dir.into(),
            stats: Stats::default(),
            tracer: None,
            faults: None,
            corruption: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a deterministic fault-injection plan: reads, writes,
    /// and decoded bytes consult it (`store_read` / `store_write` /
    /// `store_corrupt` sites). A no-op without the `fault-injection`
    /// feature.
    #[must_use]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a structured-event tracer: every lookup reports
    /// [`EventKind::StoreHit`] / [`EventKind::StoreMiss`] /
    /// [`EventKind::StoreEvicted`] with the artifact file name.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    fn trace_emit(&self, event: impl FnOnce() -> EventKind) {
        if let Some(tracer) = &self.tracer {
            tracer.emit(event());
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Artifacts served from disk so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no (valid) artifact.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    /// Corrupt or mismatched entries deleted during lookups.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.stats.evictions.load(Ordering::Relaxed)
    }

    /// Transient I/O failures that were retried (reads and writes).
    #[must_use]
    pub fn io_retries(&self) -> u64 {
        self.stats.io_retries.load(Ordering::Relaxed)
    }

    /// Entries moved to the quarantine directory after decoding corrupt
    /// [`QUARANTINE_AFTER`] times in a row.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.stats.quarantined.load(Ordering::Relaxed)
    }

    /// Orphaned temp files removed by [`ProfileStore::sweep_orphans`].
    #[must_use]
    pub fn orphans_swept(&self) -> u64 {
        self.stats.orphans_swept.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Where corrupt-twice entries are parked for post-mortem.
    #[must_use]
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Consults the injection plan at `site`; reports (and traces) a
    /// fired fault as a synthetic transient I/O error.
    fn injected_io_error(&self, site: FaultSite) -> Option<io::Error> {
        let occurrence = self.faults.as_ref()?.fire_indexed(site)?;
        self.trace_emit(|| EventKind::FaultInjected {
            site: site.name(),
            occurrence,
        });
        Some(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected {site} fault (occurrence {occurrence})"),
        ))
    }

    /// Consults the injection plan at a crash site: a planned
    /// occurrence aborts the whole process mid-operation (see
    /// [`FaultPlan::fire_crash`]). Compiled out without the
    /// `fault-injection` feature.
    fn fire_crash(&self, site: FaultSite) {
        if let Some(plan) = &self.faults {
            plan.fire_crash(site);
        }
    }

    /// Runs `op` with bounded retry on transient I/O errors; `file`
    /// names the artifact in retry trace events.
    fn with_io_retry<T>(
        &self,
        file: &str,
        site: FaultSite,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            let result = match self.injected_io_error(site) {
                Some(e) => Err(e),
                None => op(),
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) if io_error_is_transient(&e) && attempt + 1 < IO_ATTEMPTS => {
                    attempt += 1;
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                    self.trace_emit(|| EventKind::StoreIoRetry {
                        file: file.to_string(),
                        attempt,
                    });
                    std::thread::sleep(RETRY_BACKOFF * attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether `key` has been blocked from the cache this run (its
    /// entry decoded corrupt [`QUARANTINE_AFTER`] times in a row).
    fn is_quarantined(&self, digest: u64) -> bool {
        self.corruption
            .lock()
            .map(|m| m.get(&digest).is_some_and(|&n| n >= QUARANTINE_AFTER))
            .unwrap_or(false)
    }

    fn record_miss(&self, key: &CacheKey) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.trace_emit(|| EventKind::StoreMiss {
            file: key.file_name(),
        });
    }

    /// Looks up `key`. Returns `None` on a miss; transient read errors
    /// are retried ([`IO_ATTEMPTS`]); a corrupt, truncated, foreign, or
    /// stale entry is deleted (best-effort) and reported as a miss; an
    /// entry corrupt twice in a row is quarantined and its key blocked
    /// from the cache for the rest of the run.
    #[must_use]
    pub fn load(&self, key: &CacheKey) -> Option<Artifact> {
        let digest = key.digest();
        if self.is_quarantined(digest) {
            self.record_miss(key);
            return None;
        }
        let path = self.path_of(key);
        let bytes =
            match self.with_io_retry(&key.file_name(), FaultSite::StoreRead, || fs::read(&path)) {
                Ok(b) => b,
                Err(_) => {
                    // Not found, or a persistent I/O failure: degrade to a
                    // miss and recompute rather than abort the sweep.
                    self.record_miss(key);
                    return None;
                }
            };
        let bytes = self.maybe_corrupt(bytes);
        match profilefmt::decode(&bytes) {
            Ok((found, artifact)) if found == digest => {
                if let Ok(mut m) = self.corruption.lock() {
                    m.remove(&digest); // a clean decode resets the strike count
                }
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.trace_emit(|| EventKind::StoreHit {
                    file: key.file_name(),
                });
                Some(artifact)
            }
            _ => {
                self.handle_corrupt(key, digest, &path);
                self.record_miss(key);
                None
            }
        }
    }

    /// Injection site `store_corrupt`: flips a byte of the freshly read
    /// artifact, simulating a bad sector under a healthy-looking read.
    fn maybe_corrupt(&self, mut bytes: Vec<u8>) -> Vec<u8> {
        if let Some(plan) = &self.faults {
            if let Some(occurrence) = plan.fire_indexed(FaultSite::StoreCorrupt) {
                self.trace_emit(|| EventKind::FaultInjected {
                    site: FaultSite::StoreCorrupt.name(),
                    occurrence,
                });
                let mid = bytes.len() / 2;
                if let Some(b) = bytes.get_mut(mid) {
                    *b ^= 0xFF;
                }
            }
        }
        bytes
    }

    /// One corrupt decode of `key`: evict the entry, or — on the
    /// [`QUARANTINE_AFTER`]th consecutive strike — move it to the
    /// quarantine directory and block the key from being re-cached, so
    /// a bad sector cannot trap the cache in a recompute-corrupt loop.
    fn handle_corrupt(&self, key: &CacheKey, digest: u64, path: &Path) {
        let strikes = {
            let mut m = self.corruption.lock().unwrap_or_else(|e| e.into_inner());
            let n = m.entry(digest).or_insert(0);
            *n += 1;
            *n
        };
        if strikes >= QUARANTINE_AFTER {
            self.fire_crash(FaultSite::CrashStoreQuarantine);
            let qdir = self.quarantine_dir();
            let quarantined = fs::create_dir_all(&qdir)
                .and_then(|()| fs::rename(path, qdir.join(key.file_name())))
                .is_ok();
            if !quarantined {
                let _ = fs::remove_file(path); // fall back to eviction
            }
            self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
            self.trace_emit(|| EventKind::StoreQuarantined {
                file: key.file_name(),
            });
        } else {
            let _ = fs::remove_file(path);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            self.trace_emit(|| EventKind::StoreEvicted {
                file: key.file_name(),
            });
        }
    }

    /// Persists `artifact` under `key`: temp file, fsync, atomic
    /// rename, best-effort directory sync — a crash at any point
    /// publishes either the complete entry or nothing. Transient write
    /// errors are retried ([`IO_ATTEMPTS`]). Writes to a quarantined
    /// key are skipped (reported as success): the artifact was
    /// recomputed for the caller, but the slot is known-bad this run.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory or file cannot be written.
    pub fn store(&self, key: &CacheKey, artifact: &Artifact) -> Result<(), StoreError> {
        if self.is_quarantined(key.digest()) {
            return Ok(());
        }
        fs::create_dir_all(&self.dir)?;
        let bytes = profilefmt::encode(key.digest(), artifact);
        let path = self.path_of(key);
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = self.with_io_retry(&key.file_name(), FaultSite::StoreWrite, || {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            // Crash window 1: the temp file exists but may be torn and
            // is not durable. Recovery: sweep_orphans removes it.
            self.fire_crash(FaultSite::CrashStoreTempWrite);
            // The rename below publishes the entry; sync first so a
            // crash cannot publish a torn file under the final name.
            f.sync_all()
        });
        if let Err(e) = written {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        // Crash window 2: the temp file is durable but unpublished.
        // Recovery: sweep_orphans removes it; the entry is recomputed.
        self.fire_crash(FaultSite::CrashStoreFsync);
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                // Crash window 3: the entry is published (and complete,
                // thanks to the file sync) but the directory entry may
                // not be durable yet — either the full entry or nothing
                // survives; both states are valid.
                self.fire_crash(FaultSite::CrashStoreRename);
                // Best-effort directory sync so the rename itself is
                // durable; filesystems that refuse dir fsync still get
                // the torn-file protection from the file sync above.
                if let Ok(d) = fs::File::open(&self.dir) {
                    let _ = d.sync_all();
                }
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(StoreError::Io(e))
            }
        }
    }

    /// Removes orphaned temp files left behind by writers that died
    /// between temp-file creation and the publishing rename. Returns
    /// how many were removed (also counted in
    /// [`ProfileStore::orphans_swept`] and traced as
    /// `store_orphan_swept`).
    ///
    /// Temp names embed the writing pid (`{entry}.tmp.{pid}.{seq}`);
    /// files belonging to this process or to a pid that is still alive
    /// are skipped, so sweeping a live cache directory cannot race a
    /// concurrent writer's in-flight rename. Called on sweep/serve
    /// startup and by `tpdbt-fsck`.
    pub fn sweep_orphans(&self) -> u64 {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0; // no directory yet: nothing to sweep
        };
        let mut swept = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((_, rest)) = name.split_once(".tmp.") else {
                continue;
            };
            let pid = rest.split('.').next().and_then(|p| p.parse::<u32>().ok());
            if pid.is_some_and(pid_is_live) {
                continue;
            }
            if fs::remove_file(entry.path()).is_ok() {
                swept += 1;
                self.stats.orphans_swept.fetch_add(1, Ordering::Relaxed);
                self.trace_emit(|| EventKind::StoreOrphanSwept {
                    file: name.to_string(),
                });
            }
        }
        swept
    }

    /// Generic typed lookup: loads `key` and extracts the requested
    /// artifact kind ([`TypedArtifact`]). An entry of another kind is
    /// `None` — the hit was still counted, but the caller asked for the
    /// wrong shape. The serve hot tier resolves through the same trait.
    #[must_use]
    pub fn load_as<T: TypedArtifact>(&self, key: &CacheKey) -> Option<T> {
        self.load(key).and_then(T::from_artifact)
    }

    /// Typed lookup of a plain-profile artifact.
    #[must_use]
    pub fn load_plain(&self, key: &CacheKey) -> Option<PlainArtifact> {
        self.load_as(key)
    }

    /// Typed lookup of a sweep-cell artifact.
    #[must_use]
    pub fn load_cell(&self, key: &CacheKey) -> Option<CellArtifact> {
        self.load_as(key)
    }

    /// Typed lookup of a baseline artifact.
    #[must_use]
    pub fn load_base(&self, key: &CacheKey) -> Option<BaseArtifact> {
        self.load_as(key)
    }
}

/// Best-effort liveness probe for the pid embedded in a temp-file
/// name: our own pid is always live; otherwise `/proc/{pid}` decides
/// on platforms with procfs. Where that probe is unavailable the file
/// is treated as orphaned — a swept in-flight write merely costs one
/// recompute, while a leaked temp file would persist forever.
fn pid_is_live(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    Path::new("/proc").is_dir() && Path::new(&format!("/proc/{pid}")).is_dir()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir() -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "tpdbt-store-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn key(threshold: u64) -> CacheKey {
        CacheKey {
            workload: "mcf".to_string(),
            input: 0,
            scale: 0,
            mode: 0,
            threshold,
            fingerprint: 0x1234,
        }
    }

    fn base(cycles: u64) -> Artifact {
        Artifact::Base(BaseArtifact {
            cycles,
            output_digest: 9,
        })
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        assert!(store.load(&key(1)).is_none());
        assert_eq!(store.misses(), 1);

        store.store(&key(1), &base(77)).unwrap();
        let got = store.load_base(&key(1)).unwrap();
        assert_eq!(got.cycles, 77);
        assert_eq!(store.hits(), 1);

        // A different threshold is a different key.
        assert!(store.load(&key(2)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_evicted_and_recomputed() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(5), &base(1)).unwrap();
        let path = store.path_of(&key(5));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load(&key(5)).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(!path.exists(), "corrupt entry must be deleted");

        // The slot heals on the next store.
        store.store(&key(5), &base(2)).unwrap();
        assert_eq!(store.load_base(&key(5)).unwrap().cycles, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_change_addresses_a_fresh_slot() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        let old = key(7);
        store.store(&old, &base(1)).unwrap();
        let new = CacheKey {
            fingerprint: old.fingerprint + 1,
            ..old.clone()
        };
        assert!(store.load(&new).is_none(), "stale entry must not serve");
        assert!(store.load(&old).is_some(), "old entry still addressable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_digest_depends_on_every_field() {
        let base_key = key(1);
        let variants = [
            CacheKey {
                workload: "gcc".into(),
                ..base_key.clone()
            },
            CacheKey {
                input: 1,
                ..base_key.clone()
            },
            CacheKey {
                scale: 1,
                ..base_key.clone()
            },
            CacheKey {
                mode: 1,
                ..base_key.clone()
            },
            CacheKey {
                threshold: 2,
                ..base_key.clone()
            },
            CacheKey {
                fingerprint: 0,
                ..base_key.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.digest(), base_key.digest(), "{v:?}");
        }
    }

    #[test]
    fn lookups_report_trace_events() {
        let dir = scratch_dir();
        let tracer = Arc::new(Tracer::new());
        let store = ProfileStore::new(&dir).with_tracer(Arc::clone(&tracer));
        assert!(store.load(&key(1)).is_none());
        store.store(&key(1), &base(3)).unwrap();
        assert!(store.load(&key(1)).is_some());
        assert_eq!(tracer.count("store_miss"), 1);
        assert_eq!(tracer.count("store_hit"), 1);
        // Corruption reports an eviction and a miss.
        let path = store.path_of(&key(1));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key(1)).is_none());
        assert_eq!(tracer.count("store_evicted"), 1);
        assert_eq!(tracer.count("store_miss"), 2);
        let miss_files: Vec<_> = tracer
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StoreMiss { file } => Some(file.clone()),
                _ => None,
            })
            .collect();
        assert!(miss_files.iter().all(|f| f == &key(1).file_name()));
        fs::remove_dir_all(&dir).unwrap();
    }

    fn corrupt_on_disk(store: &ProfileStore, key: &CacheKey) {
        let path = store.path_of(key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
    }

    #[test]
    fn second_consecutive_corruption_quarantines_and_blocks_the_key() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(5), &base(1)).unwrap();

        // Strike one: evicted (deleted) and recomputed as before.
        corrupt_on_disk(&store, &key(5));
        assert!(store.load(&key(5)).is_none());
        assert_eq!((store.evictions(), store.quarantined()), (1, 0));
        store.store(&key(5), &base(2)).unwrap();

        // Strike two: quarantined, not deleted.
        corrupt_on_disk(&store, &key(5));
        assert!(store.load(&key(5)).is_none());
        assert_eq!((store.evictions(), store.quarantined()), (1, 1));
        assert!(!store.path_of(&key(5)).exists(), "removed from the cache");
        assert!(
            store.quarantine_dir().join(key(5).file_name()).exists(),
            "parked for post-mortem"
        );

        // The key is now blocked: stores are skipped, lookups miss, so
        // a bad sector costs one recompute per run, not a loop.
        store.store(&key(5), &base(3)).unwrap();
        assert!(!store.path_of(&key(5)).exists(), "no re-cache");
        assert!(store.load(&key(5)).is_none());

        // Healthy keys are unaffected.
        store.store(&key(6), &base(4)).unwrap();
        assert_eq!(store.load_base(&key(6)).unwrap().cycles, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_decode_resets_the_corruption_strike_count() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(9), &base(1)).unwrap();
        corrupt_on_disk(&store, &key(9));
        assert!(store.load(&key(9)).is_none()); // strike 1: evict
        store.store(&key(9), &base(2)).unwrap();
        assert!(store.load(&key(9)).is_some()); // clean decode: reset
        corrupt_on_disk(&store, &key(9));
        assert!(store.load(&key(9)).is_none()); // strike 1 again: evict
        assert_eq!((store.evictions(), store.quarantined()), (2, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_sweep_removes_dead_writers_and_spares_live_ones() {
        let dir = scratch_dir();
        let tracer = Arc::new(Tracer::new());
        let store = ProfileStore::new(&dir).with_tracer(Arc::clone(&tracer));
        store.store(&key(1), &base(1)).unwrap();
        // A temp file from a long-dead writer (pids never reach u32::MAX)
        // and one from this very process (a live in-flight write).
        let dead = dir.join(format!("{}.tmp.{}.0", key(2).file_name(), u32::MAX));
        let live = dir.join(format!(
            "{}.tmp.{}.0",
            key(3).file_name(),
            std::process::id()
        ));
        fs::write(&dead, b"torn").unwrap();
        fs::write(&live, b"in flight").unwrap();

        assert_eq!(store.sweep_orphans(), 1);
        assert_eq!(store.orphans_swept(), 1);
        assert!(!dead.exists(), "dead writer's temp file is swept");
        assert!(live.exists(), "live writer's temp file survives");
        assert_eq!(tracer.count("store_orphan_swept"), 1);
        // The published entry is untouched.
        assert_eq!(store.load_base(&key(1)).unwrap().cycles, 1);
        // Idempotent: nothing left to sweep.
        assert_eq!(store.sweep_orphans(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn typed_loads_reject_wrong_kinds() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(3), &base(1)).unwrap();
        assert!(store.load_cell(&key(3)).is_none());
        assert!(store.load_plain(&key(3)).is_none());
        assert!(store.load_base(&key(3)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "fault-injection")]
    mod injected {
        use super::*;
        use tpdbt_faults::{FaultPlan, FaultSite};

        #[test]
        fn transient_read_fault_is_retried_to_a_hit() {
            let dir = scratch_dir();
            let plan = Arc::new(FaultPlan::new().inject(FaultSite::StoreRead, 0));
            let store = ProfileStore::new(&dir).with_faults(plan);
            store.store(&key(1), &base(7)).unwrap();
            let got = store.load_base(&key(1)).expect("retry should recover");
            assert_eq!(got.cycles, 7);
            assert_eq!(store.io_retries(), 1);
            assert_eq!((store.hits(), store.misses()), (1, 0));
            fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn persistent_read_fault_degrades_to_a_miss_then_heals() {
            let dir = scratch_dir();
            // All IO_ATTEMPTS tries of the first lookup fail.
            let plan = Arc::new(
                (0..u64::from(IO_ATTEMPTS))
                    .fold(FaultPlan::new(), |p, i| p.inject(FaultSite::StoreRead, i)),
            );
            let store = ProfileStore::new(&dir).with_faults(plan);
            store.store(&key(2), &base(8)).unwrap();
            assert!(store.load(&key(2)).is_none(), "exhausted retries => miss");
            assert_eq!(store.io_retries(), u64::from(IO_ATTEMPTS) - 1);
            assert!(
                store.path_of(&key(2)).exists(),
                "an I/O miss must not evict the (healthy) entry"
            );
            assert!(store.load(&key(2)).is_some(), "next lookup is clean");
            fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn injected_corruption_walks_the_evict_then_quarantine_path() {
            let dir = scratch_dir();
            let tracer = Arc::new(Tracer::new());
            let plan = Arc::new(
                FaultPlan::new()
                    .inject(FaultSite::StoreCorrupt, 0)
                    .inject(FaultSite::StoreCorrupt, 1),
            );
            let store = ProfileStore::new(&dir)
                .with_faults(plan)
                .with_tracer(Arc::clone(&tracer));
            store.store(&key(4), &base(1)).unwrap();
            assert!(store.load(&key(4)).is_none(), "first corrupt read");
            assert_eq!((store.evictions(), store.quarantined()), (1, 0));
            store.store(&key(4), &base(1)).unwrap(); // the recompute
            assert!(store.load(&key(4)).is_none(), "second corrupt read");
            assert_eq!((store.evictions(), store.quarantined()), (1, 1));
            assert_eq!(tracer.count("fault_injected"), 2);
            assert_eq!(tracer.count("store_quarantined"), 1);
            fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn transient_write_fault_is_retried() {
            let dir = scratch_dir();
            let plan = Arc::new(FaultPlan::new().inject(FaultSite::StoreWrite, 0));
            let store = ProfileStore::new(&dir).with_faults(plan);
            store.store(&key(3), &base(5)).unwrap();
            assert_eq!(store.io_retries(), 1);
            assert_eq!(store.load_base(&key(3)).unwrap().cycles, 5);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
