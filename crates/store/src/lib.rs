//! Persistent profile store for the two-phase DBT reproduction.
//!
//! A full sweep executes every `(benchmark, ladder-point)` cell from
//! scratch even though the expensive baselines — `AVEP` and
//! `INIP(train)`, one guest run each — and every analyzed cell are pure
//! functions of the workload and translator configuration. This crate
//! makes them cacheable:
//!
//! * [`profilefmt`] — a compact, versioned, checksummed binary format
//!   (`"TPST"`, little-endian, varint-packed) for [`PlainArtifact`]
//!   profiles and per-threshold [`CellArtifact`] / [`BaseArtifact`]
//!   sweep results, hand-rolled in the style of the `tpdb` guest binary
//!   format;
//! * [`cache`] — an on-disk [`ProfileStore`] addressing artifacts by
//!   the content digest of a [`CacheKey`] (workload, input kind, scale,
//!   profiling mode, threshold, config/binary/input fingerprint), with
//!   corrupt or stale entries evicted and recomputed rather than
//!   trusted;
//! * [`digest`] — the FNV-1a 64 content digest used throughout.
//!
//! Decoders never panic on malformed input: corruption surfaces as
//! [`StoreError`] and the cache heals by recomputation. The cache layer
//! additionally retries transient I/O errors, fsyncs before publishing
//! an entry, and quarantines entries that decode corrupt twice in a
//! row (see DESIGN.md §9, "Fault tolerance and injection"); with the
//! `fault-injection` feature, a `tpdbt_faults::FaultPlan` can be
//! attached to prove those paths deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod digest;
mod error;
pub mod fsck;
pub mod profilefmt;

pub use cache::{CacheKey, ProfileStore};
pub use error::StoreError;
pub use fsck::{fsck, FsckOptions, FsckReport};
pub use profilefmt::{
    Artifact, BaseArtifact, CellArtifact, MergedArtifact, MergedBlock, PlainArtifact, TypedArtifact,
};
