//! Byte-level primitives for the artifact format: a growable writer and
//! a bounds-checked reader.
//!
//! Multi-byte integers are little-endian. Counters and lengths use
//! LEB128 varints (profiles are mostly small integers with occasional
//! huge `use` counts, so varints roughly halve artifact size); floats
//! are stored as raw IEEE 754 bits so round-trips are bitwise exact.

use crate::error::StoreError;

/// Append-only byte buffer with typed writers.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a fixed-width little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a fixed-width little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes an `i64` as a zigzag-encoded varint.
    pub fn varint_i64(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes an `f64` as its raw bits (bitwise-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an optional `f64`: presence tag then raw bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked reader over an artifact payload. Every method returns
/// [`StoreError::UnexpectedEof`] instead of slicing out of range, so
/// truncated input is an error, never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left unread.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a fixed-width little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a LEB128 varint. Rejects encodings longer than 10 bytes or
    /// overflowing 64 bits.
    pub fn varint(&mut self) -> Result<u64, StoreError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7F);
            if shift == 63 && bits > 1 {
                return Err(StoreError::BadCode {
                    what: "varint",
                    code: bits,
                });
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(StoreError::BadCode {
            what: "varint length",
            code: 10,
        })
    }

    /// Reads a zigzag-encoded varint as `i64`.
    pub fn varint_i64(&mut self) -> Result<i64, StoreError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional `f64` written by [`Writer::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(StoreError::BadCode {
                what: "option tag",
                code: u64::from(t),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.len_capped(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::BadCode {
            what: "utf-8 string",
            code: len as u64,
        })
    }

    /// Reads a varint length field and sanity-caps it against the bytes
    /// actually remaining (`min_item_size` bytes per element), so a
    /// corrupt length cannot trigger a giant allocation before the data
    /// runs out.
    pub fn len_capped(&mut self, min_item_size: usize) -> Result<usize, StoreError> {
        let len = self.varint()?;
        let cap = (self.remaining() / min_item_size.max(1)) as u64;
        if len > cap {
            return Err(StoreError::UnexpectedEof { offset: self.pos });
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let mut w = Writer::new();
        let values = [0, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zigzag_round_trip() {
        let mut w = Writer::new();
        let values = [0, -1, 1, i64::MIN, i64::MAX, -123_456_789];
        for &v in &values {
            w.varint_i64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = Writer::new();
        w.u64(42);
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let a = r.u64();
            let b = r.str();
            assert!(a.is_err() || b.is_err(), "cut at {cut} decoded fully");
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes: longer than any valid u64 varint.
        let bytes = [0x80u8; 11];
        assert!(Reader::new(&bytes).varint().is_err());
        // 10 bytes whose top bits overflow 64 bits.
        let mut overflow = [0xFFu8; 10];
        overflow[9] = 0x7F;
        assert!(Reader::new(&overflow).varint().is_err());
    }

    #[test]
    fn len_cap_rejects_huge_lengths() {
        let mut w = Writer::new();
        w.varint(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len_capped(1).is_err());
    }

    #[test]
    fn float_bits_round_trip() {
        let mut w = Writer::new();
        w.f64(0.1 + 0.2);
        w.opt_f64(None);
        w.opt_f64(Some(f64::MIN_POSITIVE));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(f64::MIN_POSITIVE));
    }
}
