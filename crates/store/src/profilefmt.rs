//! The `tpst` artifact format: versioned, checksummed binary encoding
//! of sweep artifacts.
//!
//! Layout (little-endian, in the style of the `tpdb` guest binary
//! format in `tpdbt-isa`):
//!
//! ```text
//! magic    "TPST"           4 bytes
//! version  u16              currently 1
//! key      u64              digest of the cache key that produced this
//! kind     u8               0 = plain, 1 = cell, 2 = base, 3 = merged
//! payload                   kind-specific (varints + raw f64 bits)
//! checksum u64              FNV-1a 64 of all preceding bytes
//! ```
//!
//! Decoding verifies magic, version, and checksum **before** parsing
//! the payload, so a truncated or bit-flipped file is always reported
//! as an error ([`StoreError`]) — corruption is recomputable, never a
//! panic. Enum codes ([`TermKind::code`], [`SuccSlot::code`]) are
//! append-only; bumping [`VERSION`] invalidates every cache entry.

use std::collections::BTreeMap;

use tpdbt_profile::{BlockPc, BlockRecord, PlainProfile, SuccSlot, TermKind, ThresholdMetrics};

use crate::codec::{Reader, Writer};
use crate::digest::fnv64;
use crate::error::StoreError;

/// Artifact magic.
pub const MAGIC: &[u8; 4] = b"TPST";
/// Current format version.
pub const VERSION: u16 = 1;

/// A cached plain (no-optimization) run: the `AVEP` or `INIP(train)`
/// profile plus the guest output words (kept verbatim so warm sweeps
/// can re-verify output determinism without re-executing).
#[derive(Clone, Debug, PartialEq)]
pub struct PlainArtifact {
    /// The whole-run profile.
    pub profile: PlainProfile,
    /// Guest output words of the run.
    pub output: Vec<i64>,
}

/// A cached `(benchmark, threshold)` sweep cell: the analyzed paper
/// metrics plus a digest of the guest output for divergence checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellArtifact {
    /// The paper metrics of the `INIP(T)` run analyzed against AVEP.
    pub metrics: ThresholdMetrics,
    /// [`crate::digest::fnv64_words`] of the run's guest output.
    pub output_digest: u64,
}

/// A cached `T = 1` baseline run (Figure 17 denominator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaseArtifact {
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// [`crate::digest::fnv64_words`] of the run's guest output.
    pub output_digest: u64,
}

/// One block's accumulator inside a [`MergedArtifact`]: weighted
/// counter sums (not finalized counts) so that merging is pointwise
/// integer addition — exactly commutative and associative, which is
/// what makes an incrementally built fleet consensus byte-identical to
/// an offline `tpdbt-merge` of the same contributions in any order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MergedBlock {
    /// Block length in instructions: the maximum seen across
    /// contributors (max is commutative; lengths only disagree across
    /// binary versions).
    pub len: u32,
    /// Terminator kind. Conflicts resolve commutatively: a known kind
    /// beats `None`, and between two known kinds the smaller
    /// [`TermKind::code`] wins.
    pub kind: Option<TermKind>,
    /// `Σᵢ wᵢ · useᵢ` over contributors, 128-bit so a large fleet of
    /// heavily-weighted profiles cannot overflow.
    pub use_weighted: u128,
    /// Weighted edge-count sums, keyed `(slot, target)` — the `BTreeMap`
    /// keeps encoding order deterministic.
    pub edges: BTreeMap<(SuccSlot, BlockPc), u128>,
}

/// The fleet consensus accumulator: N contributed [`PlainArtifact`]
/// profiles folded into weighted counter *sums* plus the total weight.
/// Finalizing (dividing by the total weight) happens on demand in
/// `tpdbt-fleet`; persisting the accumulator instead of the quotient is
/// what makes the merge algebra exact.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MergedArtifact {
    /// Weighting-mode code (append-only; named in `tpdbt-fleet`):
    /// 0 = visit-count, 1 = phase-coverage.
    pub weight_mode: u8,
    /// Number of contributed profiles.
    pub contributors: u64,
    /// `Σᵢ wᵢ` over contributors.
    pub total_weight: u128,
    /// Program entry block: the minimum across contributors
    /// (commutative; contributors of one consensus normally agree).
    pub entry: BlockPc,
    /// `Σᵢ wᵢ · profiling_opsᵢ`.
    pub profiling_ops_weighted: u128,
    /// `Σᵢ wᵢ · instructionsᵢ`.
    pub instructions_weighted: u128,
    /// Per-block accumulators, keyed by block address.
    pub blocks: BTreeMap<BlockPc, MergedBlock>,
}

/// Any storable artifact.
#[derive(Clone, Debug, PartialEq)]
pub enum Artifact {
    /// A plain profile run.
    Plain(PlainArtifact),
    /// An analyzed sweep cell.
    Cell(CellArtifact),
    /// A `T = 1` baseline.
    Base(BaseArtifact),
    /// A merged fleet-consensus accumulator.
    Merged(MergedArtifact),
}

/// A concrete artifact kind that can be extracted from (and wrapped
/// back into) the [`Artifact`] enum. The store's generic typed lookup
/// ([`crate::ProfileStore::load_as`]) and the serve hot tier both
/// dispatch through this trait instead of hand-written per-kind
/// wrappers.
pub trait TypedArtifact: Sized {
    /// Stable lowercase kind name (store inspection, serve responses).
    const KIND: &'static str;

    /// Extracts this kind from `artifact`; `None` if it holds another.
    fn from_artifact(artifact: Artifact) -> Option<Self>;

    /// Wraps a value of this kind back into the enum.
    fn into_artifact(self) -> Artifact;
}

impl TypedArtifact for PlainArtifact {
    const KIND: &'static str = "plain";

    fn from_artifact(artifact: Artifact) -> Option<Self> {
        match artifact {
            Artifact::Plain(p) => Some(p),
            _ => None,
        }
    }

    fn into_artifact(self) -> Artifact {
        Artifact::Plain(self)
    }
}

impl TypedArtifact for CellArtifact {
    const KIND: &'static str = "cell";

    fn from_artifact(artifact: Artifact) -> Option<Self> {
        match artifact {
            Artifact::Cell(c) => Some(c),
            _ => None,
        }
    }

    fn into_artifact(self) -> Artifact {
        Artifact::Cell(self)
    }
}

impl TypedArtifact for BaseArtifact {
    const KIND: &'static str = "base";

    fn from_artifact(artifact: Artifact) -> Option<Self> {
        match artifact {
            Artifact::Base(b) => Some(b),
            _ => None,
        }
    }

    fn into_artifact(self) -> Artifact {
        Artifact::Base(self)
    }
}

impl TypedArtifact for MergedArtifact {
    const KIND: &'static str = "merged";

    fn from_artifact(artifact: Artifact) -> Option<Self> {
        match artifact {
            Artifact::Merged(m) => Some(m),
            _ => None,
        }
    }

    fn into_artifact(self) -> Artifact {
        Artifact::Merged(self)
    }
}

const KIND_PLAIN: u8 = 0;
const KIND_CELL: u8 = 1;
const KIND_BASE: u8 = 2;
const KIND_MERGED: u8 = 3;

impl Artifact {
    fn kind(&self) -> u8 {
        match self {
            Artifact::Plain(_) => KIND_PLAIN,
            Artifact::Cell(_) => KIND_CELL,
            Artifact::Base(_) => KIND_BASE,
            Artifact::Merged(_) => KIND_MERGED,
        }
    }
}

/// Encodes `artifact` under `key_digest` into a self-contained byte
/// buffer.
#[must_use]
pub fn encode(key_digest: u64, artifact: &Artifact) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(MAGIC[0]);
    w.u8(MAGIC[1]);
    w.u8(MAGIC[2]);
    w.u8(MAGIC[3]);
    w.u16(VERSION);
    w.u64(key_digest);
    w.u8(artifact.kind());
    match artifact {
        Artifact::Plain(p) => encode_plain(&mut w, p),
        Artifact::Cell(c) => encode_cell(&mut w, c),
        Artifact::Base(b) => {
            w.varint(b.cycles);
            w.u64(b.output_digest);
        }
        Artifact::Merged(m) => encode_merged(&mut w, m),
    }
    let checksum = fnv64(w.as_bytes());
    w.u64(checksum);
    w.into_bytes()
}

/// Decodes an artifact, returning the embedded key digest and payload.
///
/// # Errors
///
/// [`StoreError::BadMagic`] / [`StoreError::BadVersion`] for foreign
/// files, [`StoreError::Checksum`] for corruption,
/// [`StoreError::UnexpectedEof`] / [`StoreError::BadCode`] /
/// [`StoreError::BadKind`] for structurally malformed payloads.
pub fn decode(bytes: &[u8]) -> Result<(u64, Artifact), StoreError> {
    // Trailer first: nothing below parses unchecksummed bytes.
    if bytes.len() < 4 + 2 + 8 + 1 + 8 {
        return Err(StoreError::UnexpectedEof {
            offset: bytes.len(),
        });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if bytes[..4] != MAGIC[..] {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    if fnv64(body) != stored {
        return Err(StoreError::Checksum);
    }

    let mut r = Reader::new(body);
    for _ in 0..4 {
        r.u8()?;
    }
    r.u16()?;
    let key_digest = r.u64()?;
    let kind = r.u8()?;
    let artifact = match kind {
        KIND_PLAIN => Artifact::Plain(decode_plain(&mut r)?),
        KIND_CELL => Artifact::Cell(decode_cell(&mut r)?),
        KIND_BASE => Artifact::Base(BaseArtifact {
            cycles: r.varint()?,
            output_digest: r.u64()?,
        }),
        KIND_MERGED => Artifact::Merged(decode_merged(&mut r)?),
        found => return Err(StoreError::BadKind { found }),
    };
    if r.remaining() != 0 {
        return Err(StoreError::BadCode {
            what: "trailing payload bytes",
            code: r.remaining() as u64,
        });
    }
    Ok((key_digest, artifact))
}

fn encode_plain(w: &mut Writer, p: &PlainArtifact) {
    w.varint(p.profile.entry as u64);
    w.varint(p.profile.profiling_ops);
    w.varint(p.profile.instructions);
    w.varint(p.profile.blocks.len() as u64);
    for (&pc, rec) in &p.profile.blocks {
        w.varint(pc as u64);
        w.varint(u64::from(rec.len));
        w.u8(rec.kind.map_or(0, |k| k.code() + 1));
        w.varint(rec.use_count);
        w.varint(rec.edges.len() as u64);
        for &(slot, target, count) in &rec.edges {
            w.varint(slot.code());
            w.varint(target as u64);
            w.varint(count);
        }
    }
    w.varint(p.output.len() as u64);
    for &word in &p.output {
        w.varint_i64(word);
    }
}

fn decode_plain(r: &mut Reader<'_>) -> Result<PlainArtifact, StoreError> {
    let entry = usize_field(r.varint()?, "entry pc")?;
    let profiling_ops = r.varint()?;
    let instructions = r.varint()?;
    let nblocks = r.len_capped(4)?;
    let mut blocks = BTreeMap::new();
    for _ in 0..nblocks {
        let pc = usize_field(r.varint()?, "block pc")?;
        let len = u32_field(r.varint()?, "block length")?;
        let kind = match r.u8()? {
            0 => None,
            tagged => match TermKind::from_code(tagged - 1) {
                Some(k) => Some(k),
                None => {
                    return Err(StoreError::BadCode {
                        what: "terminator kind",
                        code: u64::from(tagged),
                    })
                }
            },
        };
        let use_count = r.varint()?;
        let nedges = r.len_capped(3)?;
        let mut edges = Vec::with_capacity(nedges);
        for _ in 0..nedges {
            let slot_code = r.varint()?;
            let slot = SuccSlot::from_code(slot_code).ok_or(StoreError::BadCode {
                what: "successor slot",
                code: slot_code,
            })?;
            let target = usize_field(r.varint()?, "edge target")?;
            let count = r.varint()?;
            edges.push((slot, target, count));
        }
        blocks.insert(
            pc,
            BlockRecord {
                len,
                kind,
                use_count,
                edges,
            },
        );
    }
    let noutput = r.len_capped(1)?;
    let mut output = Vec::with_capacity(noutput);
    for _ in 0..noutput {
        output.push(r.varint_i64()?);
    }
    Ok(PlainArtifact {
        profile: PlainProfile {
            blocks,
            entry,
            profiling_ops,
            instructions,
        },
        output,
    })
}

fn encode_cell(w: &mut Writer, c: &CellArtifact) {
    let m = &c.metrics;
    w.varint(m.threshold);
    w.opt_f64(m.sd_bp);
    w.opt_f64(m.bp_mismatch);
    w.opt_f64(m.sd_cp);
    w.opt_f64(m.sd_lp);
    w.opt_f64(m.lp_mismatch);
    w.varint(m.profiling_ops);
    w.varint(m.cycles);
    w.varint(m.regions as u64);
    w.u64(c.output_digest);
}

fn decode_cell(r: &mut Reader<'_>) -> Result<CellArtifact, StoreError> {
    Ok(CellArtifact {
        metrics: ThresholdMetrics {
            threshold: r.varint()?,
            sd_bp: r.opt_f64()?,
            bp_mismatch: r.opt_f64()?,
            sd_cp: r.opt_f64()?,
            sd_lp: r.opt_f64()?,
            lp_mismatch: r.opt_f64()?,
            profiling_ops: r.varint()?,
            cycles: r.varint()?,
            regions: usize_field(r.varint()?, "region count")?,
        },
        output_digest: r.u64()?,
    })
}

/// A `u128` as two varints, high half first (weighted sums routinely
/// exceed `u64` on large fleets but the high half is usually zero, so
/// the varint split stays compact).
fn write_u128(w: &mut Writer, v: u128) {
    w.varint((v >> 64) as u64);
    w.varint(v as u64);
}

fn read_u128(r: &mut Reader<'_>) -> Result<u128, StoreError> {
    let hi = r.varint()?;
    let lo = r.varint()?;
    Ok((u128::from(hi) << 64) | u128::from(lo))
}

fn encode_merged(w: &mut Writer, m: &MergedArtifact) {
    w.u8(m.weight_mode);
    w.varint(m.contributors);
    write_u128(w, m.total_weight);
    w.varint(m.entry as u64);
    write_u128(w, m.profiling_ops_weighted);
    write_u128(w, m.instructions_weighted);
    w.varint(m.blocks.len() as u64);
    for (&pc, block) in &m.blocks {
        w.varint(pc as u64);
        w.varint(u64::from(block.len));
        w.u8(block.kind.map_or(0, |k| k.code() + 1));
        write_u128(w, block.use_weighted);
        w.varint(block.edges.len() as u64);
        for (&(slot, target), &weight) in &block.edges {
            w.varint(slot.code());
            w.varint(target as u64);
            write_u128(w, weight);
        }
    }
}

fn decode_merged(r: &mut Reader<'_>) -> Result<MergedArtifact, StoreError> {
    let weight_mode = r.u8()?;
    let contributors = r.varint()?;
    let total_weight = read_u128(r)?;
    let entry = usize_field(r.varint()?, "merged entry pc")?;
    let profiling_ops_weighted = read_u128(r)?;
    let instructions_weighted = read_u128(r)?;
    let nblocks = r.len_capped(5)?;
    let mut blocks = BTreeMap::new();
    for _ in 0..nblocks {
        let pc = usize_field(r.varint()?, "merged block pc")?;
        let len = u32_field(r.varint()?, "merged block length")?;
        let kind = match r.u8()? {
            0 => None,
            tagged => match TermKind::from_code(tagged - 1) {
                Some(k) => Some(k),
                None => {
                    return Err(StoreError::BadCode {
                        what: "merged terminator kind",
                        code: u64::from(tagged),
                    })
                }
            },
        };
        let use_weighted = read_u128(r)?;
        let nedges = r.len_capped(4)?;
        let mut edges = BTreeMap::new();
        for _ in 0..nedges {
            let slot_code = r.varint()?;
            let slot = SuccSlot::from_code(slot_code).ok_or(StoreError::BadCode {
                what: "merged successor slot",
                code: slot_code,
            })?;
            let target = usize_field(r.varint()?, "merged edge target")?;
            edges.insert((slot, target), read_u128(r)?);
        }
        blocks.insert(
            pc,
            MergedBlock {
                len,
                kind,
                use_weighted,
                edges,
            },
        );
    }
    Ok(MergedArtifact {
        weight_mode,
        contributors,
        total_weight,
        entry,
        profiling_ops_weighted,
        instructions_weighted,
        blocks,
    })
}

fn usize_field(v: u64, what: &'static str) -> Result<usize, StoreError> {
    usize::try_from(v).map_err(|_| StoreError::BadCode { what, code: v })
}

fn u32_field(v: u64, what: &'static str) -> Result<u32, StoreError> {
    u32::try_from(v).map_err(|_| StoreError::BadCode { what, code: v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_profile::BlockPc;

    fn sample_profile() -> PlainProfile {
        let mut blocks = BTreeMap::new();
        blocks.insert(
            0 as BlockPc,
            BlockRecord {
                len: 4,
                kind: Some(TermKind::Cond),
                use_count: 1000,
                edges: vec![(SuccSlot::Taken, 8, 700), (SuccSlot::Fallthrough, 4, 300)],
            },
        );
        blocks.insert(
            8,
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Return),
                use_count: 700,
                edges: vec![(SuccSlot::Other(0), 0, 650), (SuccSlot::Other(1), 12, 50)],
            },
        );
        PlainProfile {
            blocks,
            entry: 0,
            profiling_ops: 2700,
            instructions: 5400,
        }
    }

    #[test]
    fn plain_round_trip() {
        let artifact = Artifact::Plain(PlainArtifact {
            profile: sample_profile(),
            output: vec![42, -7, i64::MAX],
        });
        let bytes = encode(0xDEAD_BEEF, &artifact);
        let (key, decoded) = decode(&bytes).unwrap();
        assert_eq!(key, 0xDEAD_BEEF);
        assert_eq!(decoded, artifact);
    }

    #[test]
    fn cell_round_trip() {
        let artifact = Artifact::Cell(CellArtifact {
            metrics: ThresholdMetrics {
                threshold: 2000,
                sd_bp: Some(0.137),
                bp_mismatch: Some(0.25),
                sd_cp: None,
                sd_lp: Some(0.02),
                lp_mismatch: None,
                profiling_ops: 123_456,
                cycles: 9_876_543,
                regions: 17,
            },
            output_digest: 0x0123_4567_89AB_CDEF,
        });
        let bytes = encode(7, &artifact);
        assert_eq!(decode(&bytes).unwrap(), (7, artifact));
    }

    #[test]
    fn base_round_trip() {
        let artifact = Artifact::Base(BaseArtifact {
            cycles: u64::MAX,
            output_digest: 3,
        });
        let bytes = encode(9, &artifact);
        assert_eq!(decode(&bytes).unwrap(), (9, artifact));
    }

    fn sample_merged() -> MergedArtifact {
        let mut blocks = BTreeMap::new();
        blocks.insert(
            0 as BlockPc,
            MergedBlock {
                len: 4,
                kind: Some(TermKind::Cond),
                use_weighted: u128::from(u64::MAX) * 3,
                edges: [
                    ((SuccSlot::Taken, 8 as BlockPc), 700u128),
                    ((SuccSlot::Fallthrough, 4), u128::from(u64::MAX) + 1),
                ]
                .into_iter()
                .collect(),
            },
        );
        blocks.insert(
            8,
            MergedBlock {
                len: 2,
                kind: None,
                use_weighted: 700,
                edges: BTreeMap::new(),
            },
        );
        MergedArtifact {
            weight_mode: 1,
            contributors: 3,
            total_weight: (u128::from(u64::MAX) << 1) | 1,
            entry: 0,
            profiling_ops_weighted: 2700,
            instructions_weighted: 5400,
            blocks,
        }
    }

    #[test]
    fn merged_round_trip() {
        let artifact = Artifact::Merged(sample_merged());
        let bytes = encode(0xF1EE_7000, &artifact);
        let (key, decoded) = decode(&bytes).unwrap();
        assert_eq!(key, 0xF1EE_7000);
        assert_eq!(decoded, artifact);
    }

    #[test]
    fn merged_every_flip_and_truncation_is_detected() {
        let good = encode(0xAB, &Artifact::Merged(sample_merged()));
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
        for cut in 0..good.len() {
            assert!(decode(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let artifact = Artifact::Base(BaseArtifact {
            cycles: 1,
            output_digest: 2,
        });
        let good = encode(0, &artifact);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode(&bad_magic), Err(StoreError::BadMagic)));
        let mut bad_version = good;
        bad_version[4] = 0xFE;
        assert!(matches!(
            decode(&bad_version),
            Err(StoreError::BadVersion { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let artifact = Artifact::Plain(PlainArtifact {
            profile: sample_profile(),
            output: vec![1, 2, 3],
        });
        let good = encode(0xAB, &artifact);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let artifact = Artifact::Cell(CellArtifact {
            metrics: ThresholdMetrics {
                threshold: 100,
                sd_bp: Some(0.5),
                bp_mismatch: None,
                sd_cp: None,
                sd_lp: None,
                lp_mismatch: None,
                profiling_ops: 10,
                cycles: 20,
                regions: 1,
            },
            output_digest: 5,
        });
        let good = encode(1, &artifact);
        for cut in 0..good.len() {
            assert!(decode(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
    }
}
