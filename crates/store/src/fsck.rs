//! Offline store verification and repair (`tpdbt-fsck`).
//!
//! [`fsck`] scans a cache directory the way the store itself never has
//! to: every `.tpst` entry is decoded and its embedded key digest
//! checked against the digest in its file name, orphaned temp files
//! (`*.tmp.{pid}.{seq}`, left by writers that died before their
//! publishing rename) are found, and the `quarantine/` directory is
//! inventoried. With [`FsckOptions::repair`] the damage is healed:
//! corrupt and mismatched entries are removed (the store re-derives
//! them on the next access — every artifact is a pure function of its
//! [`CacheKey`](crate::CacheKey), so deletion *is* repair) and orphans
//! are swept.
//!
//! The same scan runs at `tpdbt-serve` startup as the store self-check
//! before the daemon accepts connections (DESIGN.md §14).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::profilefmt;

/// What [`fsck`] is allowed to do to the directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsckOptions {
    /// Remove corrupt/mismatched entries and sweep orphaned temp
    /// files. Without this the scan is read-only.
    pub repair: bool,
}

/// The result of one [`fsck`] scan.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Entries that decoded clean with a digest matching their file
    /// name.
    pub valid: u64,
    /// File names of entries that failed to decode (bad magic,
    /// version, truncation, checksum).
    pub corrupt: Vec<String>,
    /// File names of entries that decoded clean but whose embedded key
    /// digest contradicts the digest in the file name (a misplaced or
    /// tampered entry — it would never be served, but it wastes a
    /// slot).
    pub mismatched: Vec<String>,
    /// Orphaned temp-file names found.
    pub orphans: Vec<String>,
    /// File names parked in the `quarantine/` directory.
    pub quarantined: Vec<String>,
    /// Damaged entries removed (only when repairing).
    pub repaired: u64,
    /// Orphaned temp files removed (only when repairing).
    pub orphans_swept: u64,
    /// Wall-clock scan time.
    pub elapsed: Duration,
}

impl FsckReport {
    /// Whether the directory needs no attention: no corrupt or
    /// mismatched entries and no orphans. Quarantined files do not
    /// count against cleanliness — they are already isolated and kept
    /// deliberately for post-mortem.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty() && self.mismatched.is_empty() && self.orphans.is_empty()
    }

    /// A human-readable multi-line summary (the `tpdbt-fsck` output).
    #[must_use]
    pub fn render(&self, dir: &Path) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fsck {}: {} valid, {} corrupt, {} mismatched, {} orphans, {} quarantined ({} ms)",
            dir.display(),
            self.valid,
            self.corrupt.len(),
            self.mismatched.len(),
            self.orphans.len(),
            self.quarantined.len(),
            self.elapsed.as_millis()
        );
        for f in &self.corrupt {
            let _ = writeln!(out, "  corrupt: {f}");
        }
        for f in &self.mismatched {
            let _ = writeln!(out, "  mismatched digest: {f}");
        }
        for f in &self.orphans {
            let _ = writeln!(out, "  orphan: {f}");
        }
        for f in &self.quarantined {
            let _ = writeln!(out, "  quarantined: {f}");
        }
        if self.repaired > 0 || self.orphans_swept > 0 {
            let _ = writeln!(
                out,
                "  repaired: {} damaged entries removed (re-derived on next access), \
                 {} orphans swept",
                self.repaired, self.orphans_swept
            );
        }
        out
    }
}

/// The key digest encoded in an artifact file name: the 16 hex digits
/// before the `.tpst` extension.
fn file_name_digest(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".tpst")?;
    let hex = stem.get(stem.len().checked_sub(16)?..)?;
    u64::from_str_radix(hex, 16).ok()
}

/// Scans (and with `opts.repair`, heals) the cache directory at `dir`.
/// A missing directory is a clean empty store, not an error — serve
/// startup runs this on cache dirs that do not exist yet.
///
/// # Errors
///
/// Only on I/O failures listing the directory itself; per-file read
/// errors classify the file as corrupt instead of aborting the scan.
pub fn fsck(dir: &Path, opts: FsckOptions) -> io::Result<FsckReport> {
    let start = Instant::now();
    let mut report = FsckReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            report.elapsed = start.elapsed();
            return Ok(report);
        }
        Err(e) => return Err(e),
    };

    let mut damaged: Vec<PathBuf> = Vec::new();
    let mut orphan_paths: Vec<PathBuf> = Vec::new();
    let mut names: Vec<(String, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_str()?.to_string();
            Some((name, e.path()))
        })
        .collect();
    names.sort(); // deterministic report order

    for (name, path) in names {
        if name.contains(".tmp.") {
            report.orphans.push(name);
            orphan_paths.push(path);
            continue;
        }
        if !name.ends_with(".tpst") {
            continue; // quarantine/ and anything foreign
        }
        let decoded = fs::read(&path)
            .map_err(|_| ())
            .and_then(|bytes| profilefmt::decode(&bytes).map_err(|_| ()));
        match decoded {
            Ok((embedded, _)) => match file_name_digest(&name) {
                Some(named) if named == embedded => report.valid += 1,
                _ => {
                    report.mismatched.push(name);
                    damaged.push(path);
                }
            },
            Err(()) => {
                report.corrupt.push(name);
                damaged.push(path);
            }
        }
    }

    let qdir = dir.join("quarantine");
    if let Ok(entries) = fs::read_dir(&qdir) {
        report.quarantined = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .collect();
        report.quarantined.sort();
    }

    if opts.repair {
        for path in damaged {
            if fs::remove_file(&path).is_ok() {
                report.repaired += 1;
            }
        }
        for path in orphan_paths {
            if fs::remove_file(&path).is_ok() {
                report.orphans_swept += 1;
            }
        }
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheKey, ProfileStore};
    use crate::profilefmt::{Artifact, BaseArtifact};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "tpdbt-fsck-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn key(threshold: u64) -> CacheKey {
        CacheKey {
            workload: "gzip".to_string(),
            input: 0,
            scale: 0,
            mode: 0,
            threshold,
            fingerprint: 0xbeef,
        }
    }

    fn base(cycles: u64) -> Artifact {
        Artifact::Base(BaseArtifact {
            cycles,
            output_digest: 1,
        })
    }

    #[test]
    fn missing_directory_is_clean() {
        let report = fsck(&scratch_dir(), FsckOptions::default()).unwrap();
        assert!(report.clean());
        assert_eq!(report.valid, 0);
    }

    #[test]
    fn healthy_store_scans_clean() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(1), &base(1)).unwrap();
        store.store(&key(2), &base(2)).unwrap();
        let report = fsck(&dir, FsckOptions::default()).unwrap();
        assert!(report.clean(), "{}", report.render(&dir));
        assert_eq!(report.valid, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finds_and_repairs_every_damage_class() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(1), &base(1)).unwrap();
        store.store(&key(2), &base(2)).unwrap();
        store.store(&key(3), &base(3)).unwrap();

        // Corrupt one entry's bytes.
        let corrupt_path = dir.join(key(2).file_name());
        let mut bytes = fs::read(&corrupt_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&corrupt_path, &bytes).unwrap();

        // Misfile another under a wrong digest (valid bytes, wrong name).
        let misfiled = dir.join("gzip-0000000000000000.tpst");
        fs::copy(dir.join(key(3).file_name()), &misfiled).unwrap();

        // And leave an orphaned temp file from a dead writer.
        let orphan = dir.join(format!("{}.tmp.{}.0", key(4).file_name(), u32::MAX));
        fs::write(&orphan, b"torn write").unwrap();

        let scan = fsck(&dir, FsckOptions::default()).unwrap();
        assert!(!scan.clean());
        assert_eq!(scan.valid, 2, "keys 1 and 3 are fine");
        assert_eq!(scan.corrupt, vec![key(2).file_name()]);
        assert_eq!(
            scan.mismatched,
            vec!["gzip-0000000000000000.tpst".to_string()]
        );
        assert_eq!(scan.orphans.len(), 1);
        assert_eq!((scan.repaired, scan.orphans_swept), (0, 0), "read-only");
        assert!(corrupt_path.exists(), "read-only scan must not delete");

        let repair = fsck(&dir, FsckOptions { repair: true }).unwrap();
        assert_eq!(repair.repaired, 2);
        assert_eq!(repair.orphans_swept, 1);
        assert!(!corrupt_path.exists());
        assert!(!misfiled.exists());
        assert!(!orphan.exists());

        let rescan = fsck(&dir, FsckOptions::default()).unwrap();
        assert!(rescan.clean(), "{}", rescan.render(&dir));
        assert_eq!(rescan.valid, 2);
        // Repair is deletion; the store re-derives on the next miss.
        assert!(store.load(&key(2)).is_none());
        store.store(&key(2), &base(2)).unwrap();
        assert_eq!(fsck(&dir, FsckOptions::default()).unwrap().valid, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_artifacts_scan_valid_and_repair_when_corrupted() {
        // Regression: the merged fleet-consensus kind (kind 3) must be
        // a first-class store citizen to fsck — scanned and counted
        // valid, not skipped or misclassified as foreign/orphaned.
        use crate::profilefmt::MergedArtifact;
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        let merged = Artifact::Merged(MergedArtifact {
            weight_mode: 0,
            contributors: 2,
            total_weight: 1000,
            ..MergedArtifact::default()
        });
        let k = key(77);
        store.store(&k, &merged).unwrap();
        let scan = fsck(&dir, FsckOptions::default()).unwrap();
        assert!(scan.clean(), "{}", scan.render(&dir));
        assert_eq!(scan.valid, 1);
        assert!(scan.orphans.is_empty(), "merged entry flagged as orphan");

        // Corrupt it: fsck must detect and (with repair) remove it.
        let path = dir.join(k.file_name());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let repair = fsck(&dir, FsckOptions { repair: true }).unwrap();
        assert_eq!(repair.corrupt, vec![k.file_name()]);
        assert_eq!(repair.repaired, 1);
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_is_reported_but_does_not_dirty_the_scan() {
        let dir = scratch_dir();
        let store = ProfileStore::new(&dir);
        store.store(&key(1), &base(1)).unwrap();
        let qdir = store.quarantine_dir();
        fs::create_dir_all(&qdir).unwrap();
        fs::write(qdir.join(key(9).file_name()), b"parked").unwrap();
        let report = fsck(&dir, FsckOptions::default()).unwrap();
        assert!(report.clean());
        assert_eq!(report.quarantined, vec![key(9).file_name()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_name_digest_parses_store_names() {
        assert_eq!(file_name_digest(&key(7).file_name()), Some(key(7).digest()));
        assert_eq!(file_name_digest("gzip-00000000000000ff.tpst"), Some(0xff));
        assert_eq!(file_name_digest("short.tpst"), None);
        assert_eq!(file_name_digest("no-extension"), None);
    }
}
