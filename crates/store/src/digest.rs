//! Content digests: FNV-1a 64.
//!
//! The store needs a digest that is stable across runs, platforms, and
//! compiler versions (cache files outlive processes), cheap, and free
//! of external dependencies. FNV-1a 64 fits: it is a published constant
//! algorithm and collision resistance is not a security requirement
//! here — a collision merely serves a stale artifact for one cell, and
//! the embedded key digest plus checksum already bound the blast
//! radius.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(OFFSET_BASIS)
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot digest of a byte slice.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot digest of a guest output (or input) word stream.
#[must_use]
pub fn fnv64_words(words: &[i64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(words.len() as u64);
    for &w in words {
        h.write_i64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Vectors from the FNV reference implementation.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn word_digest_separates_length_and_content() {
        assert_ne!(fnv64_words(&[]), fnv64_words(&[0]));
        assert_ne!(fnv64_words(&[1, 2]), fnv64_words(&[2, 1]));
        assert_eq!(fnv64_words(&[1, 2, 3]), fnv64_words(&[1, 2, 3]));
    }
}
