//! Store error type.

/// Errors from encoding, decoding, or persisting store artifacts.
///
/// Decoders return errors for *any* malformed input — corruption is a
/// recoverable condition (the cache recomputes the artifact), never a
/// panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The input ended before the structure was complete.
    UnexpectedEof {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// Unknown artifact kind byte.
    BadKind {
        /// The offending byte.
        found: u8,
    },
    /// The checksum trailer did not match the content.
    Checksum,
    /// The artifact was written under a different cache key (stale or
    /// colliding entry).
    KeyMismatch,
    /// An enum code or length field was out of range.
    BadCode {
        /// Which field was malformed.
        what: &'static str,
        /// The offending value.
        code: u64,
    },
}

impl StoreError {
    /// Whether this error is plausibly transient — worth a bounded
    /// retry before giving up. Only a conservative set of I/O kinds
    /// qualifies (interrupted syscalls, timeouts, would-block); decode
    /// errors never do: re-reading the same corrupt bytes cannot help,
    /// eviction or quarantine can.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => io_error_is_transient(e),
            _ => false,
        }
    }
}

/// The retry classification shared by reads and writes.
pub(crate) fn io_error_is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(
        e.kind(),
        ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
    )
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of artifact at byte {offset}")
            }
            StoreError::BadMagic => write!(f, "not a tpdbt-store artifact (bad magic)"),
            StoreError::BadVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            StoreError::BadKind { found } => write!(f, "unknown artifact kind {found:#x}"),
            StoreError::Checksum => write!(f, "artifact checksum mismatch (corrupt entry)"),
            StoreError::KeyMismatch => write!(f, "artifact was stored under a different key"),
            StoreError::BadCode { what, code } => write!(f, "malformed {what} (value {code})"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
