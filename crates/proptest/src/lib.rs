//! Offline stand-in for the slice of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by minimal in-repo path crates (DESIGN.md,
//! "Dependency policy"). This crate keeps the workspace's property
//! tests source-compatible: `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy`/`prop_map`, `Just`, `any`, integer and
//! float range strategies, tuple strategies, `prop::collection::vec` /
//! `btree_map`, and a tiny character-class string strategy.
//!
//! Differences from upstream, on purpose:
//!
//! * no shrinking — a failing case reports its case index and panics;
//!   every case is derived deterministically from the test's name, so
//!   failures reproduce exactly on re-run;
//! * string strategies support only `[class]{lo,hi}` patterns (the one
//!   form used in-tree), not general regexes.

#![forbid(unsafe_code)]

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failed property-test case (produced by `prop_assert!` and
/// friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property-test bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case `case` of the test named `name`: the stream depends
    /// only on these two values, so every run of the suite explores the
    /// same cases.
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The underlying `rand` generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy built from a plain generation function (the backbone of
/// `prop_compose!`).
pub struct Generator<F>(F);

impl<F> Generator<F> {
    /// Wraps `f` as a strategy.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        Generator(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for Generator<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_strategies!(i64, u64, i32, u32, u8, usize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().next_u64() & 1 == 1
    }
}

/// Marker strategy for [`ArbitraryValue`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Inclusive size bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Character-class string strategy: `"[class]{lo,hi}"` (e.g.
/// `"[ -~\n]{0,400}"`). The single pattern form used in-tree.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, size) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (only [class]{{lo,hi}})")
        });
        let len = rng.rng().gen_range(size.lo..=size.hi);
        (0..len)
            .map(|_| chars[rng.rng().gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, SizeRange)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, rest) = rest.split_at(close);
    let rest = rest.strip_prefix(']')?.strip_prefix('{')?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let size = SizeRange {
        lo: lo.trim().parse().ok()?,
        hi: hi.trim().parse().ok()?,
    };
    let mut chars = Vec::new();
    let raw: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < raw.len() {
        let c = match raw[i] {
            '\\' if i + 1 < raw.len() => {
                i += 1;
                match raw[i] {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            }
            other => other,
        };
        // Range `a-b` (a `-` that is neither first nor last).
        if i + 2 < raw.len() && raw[i + 1] == '-' {
            let end = raw[i + 2];
            for v in (c as u32)..=(end as u32) {
                chars.extend(char::from_u32(v));
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, size))
}

/// Namespaced combinators (`prop::collection::*`), mirroring upstream's
/// module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng as _;
        use std::collections::BTreeMap;

        /// Vector of values from `elem`, with a size drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Map with keys from `key`, values from `value`, and a target
        /// size drawn from `size` (key collisions may land short, as
        /// upstream).
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        /// See [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = rng.rng().gen_range(self.size.lo..=self.size.hi);
                let mut out = BTreeMap::new();
                for _ in 0..target.saturating_mul(4) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.key.generate(rng), self.value.generate(rng));
                }
                out
            }
        }
    }
}

/// Everything the in-tree tests import.
pub mod prelude {
    pub use super::prop;
    pub use super::{any, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Composes named sub-strategies into a derived-value strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($var:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Generator::new(move |rng: &mut $crate::TestRng| {
                $(let $var = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Declares deterministic property tests over the given strategies.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(full_name, case);
                $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                let outcome = (|| -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {full_name} failed at case {case}/{}:\n{e}",
                        config.cases
                    );
                }
            }
        }
    )*};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    fn arb_pick() -> impl Strategy<Value = Pick> {
        prop_oneof![(0u8..9).prop_map(Pick::A), Just(Pick::B)]
    }

    prop_compose! {
        fn arb_pair(offset: i64)(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a + offset, b + offset)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((x, y) in (1i64..5, 0.0f64..=1.0)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn oneof_hits_both_arms(picks in prop::collection::vec(arb_pick(), 32..64)) {
            prop_assert!(picks.iter().any(|p| matches!(p, Pick::A(_))));
            prop_assert!(picks.contains(&Pick::B));
        }

        #[test]
        fn composed_offsets_apply((a, b) in arb_pair(100)) {
            prop_assert!((100..110).contains(&a), "a = {a}");
            prop_assert!((100..110).contains(&b));
        }

        #[test]
        fn class_pattern_strings(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn maps_respect_bounds(m in prop::collection::btree_map(0usize..50, any::<bool>(), 0..8)) {
            prop_assert!(m.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        let s = prop::collection::vec(0u64..1000, 5..9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
