//! [`OptService`]: a bounded hot-candidate queue drained by a worker
//! pool.
//!
//! The execution thread submits jobs and never blocks: a full queue
//! rejects the submission (the candidate stays profiled and can
//! re-trigger later), and completed results are collected with a
//! non-blocking [`OptService::drain`] at a point of the submitter's
//! choosing — which is what makes the installation *atomic from the
//! engine's perspective*: results are applied between guest blocks,
//! never mid-execution. [`OptService::flush`] blocks until the pipeline
//! is empty, used once at end of run so every enqueued candidate is
//! accounted for (installed or discarded, nothing silently lost).
//!
//! With a single worker the service completes jobs in FIFO submission
//! order — tests rely on this for deterministic install/discard
//! schedules.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Exact lifetime counters for a service; see [`OptService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub enqueued: u64,
    /// Jobs whose worker function has finished.
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Highest observed queue depth (queued + in flight).
    pub peak_depth: u64,
}

struct State<J, R> {
    queue: VecDeque<J>,
    done: Vec<R>,
    in_flight: usize,
    shutdown: bool,
    stats: ServiceStats,
}

struct Shared<J, R> {
    state: Mutex<State<J, R>>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when the pipeline drains (queue empty, nothing in flight).
    idle: Condvar,
}

/// A worker pool consuming jobs `J` and producing results `R` via a
/// caller-supplied function.
pub struct OptService<J, R> {
    shared: Arc<Shared<J, R>>,
    capacity: usize,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static, R: Send + 'static> OptService<J, R> {
    /// Starts `workers` threads (minimum 1) serving a queue bounded at
    /// `capacity` jobs. `run` is invoked once per job on a worker
    /// thread and must not panic.
    pub fn new<F>(workers: usize, capacity: usize, run: F) -> Self
    where
        F: Fn(J) -> R + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                done: Vec::new(),
                in_flight: 0,
                shutdown: false,
                stats: ServiceStats::default(),
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let run = Arc::new(run);
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::spawn(move || worker_loop(&shared, &*run))
            })
            .collect();
        OptService {
            shared,
            capacity: capacity.max(1),
            workers: handles,
        }
    }
}

impl<J, R> OptService<J, R> {
    /// Offers a job to the queue. Returns `false` (job dropped) when
    /// the queue is at capacity; never blocks.
    pub fn submit(&self, job: J) -> bool {
        let mut st = self.lock();
        if st.queue.len() >= self.capacity {
            st.stats.rejected += 1;
            return false;
        }
        st.queue.push_back(job);
        st.stats.enqueued += 1;
        let depth = st.queue.len() + st.in_flight;
        st.stats.peak_depth = st.stats.peak_depth.max(depth as u64);
        drop(st);
        self.shared.work.notify_one();
        true
    }

    /// Collects every finished result without blocking, in completion
    /// order.
    #[must_use]
    pub fn drain(&self) -> Vec<R> {
        std::mem::take(&mut self.lock().done)
    }

    /// Blocks until the queue is empty and no job is in flight, then
    /// collects every finished result.
    #[must_use]
    pub fn flush(&self) -> Vec<R> {
        let mut st = self.lock();
        while !(st.queue.is_empty() && st.in_flight == 0) {
            st = self
                .shared
                .idle
                .wait(st)
                .expect("optimizer service poisoned");
        }
        std::mem::take(&mut st.done)
    }

    /// Jobs currently queued or in flight.
    #[must_use]
    pub fn depth(&self) -> usize {
        let st = self.lock();
        st.queue.len() + st.in_flight
    }

    /// Exact lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<J, R>> {
        self.shared
            .state
            .lock()
            .expect("optimizer service poisoned")
    }
}

fn worker_loop<J, R>(shared: &Shared<J, R>, run: &(impl Fn(J) -> R + ?Sized)) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("optimizer service poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("optimizer service poisoned");
            }
        };
        let result = run(job);
        let mut st = shared.state.lock().expect("optimizer service poisoned");
        st.done.push(result);
        st.in_flight -= 1;
        st.stats.completed += 1;
        if st.queue.is_empty() && st.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

impl<J, R> Drop for OptService<J, R> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<J, R> std::fmt::Debug for OptService<J, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptService")
            .field("workers", &self.workers.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_completes_in_fifo_order() {
        let svc = OptService::new(1, 64, |x: u64| x * 2);
        for i in 0..10 {
            assert!(svc.submit(i));
        }
        let results = svc.flush();
        assert_eq!(results, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(
            svc.stats(),
            ServiceStats {
                enqueued: 10,
                completed: 10,
                rejected: 0,
                peak_depth: svc.stats().peak_depth,
            }
        );
        assert!(svc.stats().peak_depth >= 1);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        // A job that blocks until released keeps the single worker busy
        // so the queue genuinely fills.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let svc = OptService::new(1, 2, move |x: u64| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            x
        });
        // First job may be picked up immediately; submit until the
        // 2-slot queue itself is full.
        let mut accepted = 0;
        while svc.submit(accepted) {
            accepted += 1;
            assert!(accepted < 16, "queue never filled");
        }
        assert!(accepted >= 2);
        let stats = svc.stats();
        assert_eq!(stats.enqueued, accepted);
        assert_eq!(stats.rejected, 1);
        // Release the workers and drain everything.
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        let results = svc.flush();
        assert_eq!(results.len() as u64, accepted);
        assert_eq!(svc.stats().completed, accepted);
    }

    #[test]
    fn drain_is_nonblocking_and_flush_collects_the_rest() {
        let svc = OptService::new(2, 64, |x: u64| x + 1);
        let _ = svc.drain(); // empty, returns immediately
        for i in 0..50 {
            assert!(svc.submit(i));
        }
        let mut got = svc.drain();
        got.extend(svc.flush());
        got.sort_unstable();
        assert_eq!(got, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_submitters_counters_stay_exact() {
        let svc = Arc::new(OptService::new(4, 8, |x: u64| x));
        let attempts = 4 * 500;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    for i in 0..500 {
                        let _ = svc.submit(t * 1000 + i);
                    }
                });
            }
        });
        let results = svc.flush();
        let stats = svc.stats();
        assert_eq!(stats.enqueued + stats.rejected, attempts);
        assert_eq!(stats.completed, stats.enqueued);
        assert_eq!(results.len() as u64, stats.enqueued);
        assert!(stats.peak_depth <= 8 + 4, "bounded by capacity + workers");
    }

    #[test]
    fn drop_joins_workers_with_jobs_outstanding() {
        let svc = OptService::new(2, 64, |x: u64| x);
        for i in 0..20 {
            let _ = svc.submit(i);
        }
        drop(svc); // must not hang or panic
    }
}
