//! [`SwapCell`]: a shared slot whose contents are replaced wholesale.
//!
//! The cached backend keeps its region→chain table behind one of these.
//! Readers take a cheap snapshot (`Arc` clone) and work against an
//! immutable table; writers build a *new* table and publish it in one
//! swap. Nobody ever observes a half-updated table — the install of a
//! background-compiled region is atomic with respect to every reader.
//!
//! The workspace forbids `unsafe`, so the slot is a `Mutex<Arc<T>>`
//! rather than an `AtomicPtr`; the critical section is a single pointer
//! clone/store, which is uncontended in practice (one execution thread,
//! occasional installs).

use std::sync::{Arc, Mutex};

/// A publication slot holding an `Arc<T>` that is replaced, never
/// mutated in place.
pub struct SwapCell<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> SwapCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: T) -> Self {
        SwapCell::from_arc(Arc::new(value))
    }

    /// A cell initially holding an already-shared `value`.
    pub fn from_arc(value: Arc<T>) -> Self {
        SwapCell {
            slot: Mutex::new(value),
        }
    }

    /// Snapshot the current contents. The returned `Arc` stays valid
    /// (and immutable) regardless of later [`SwapCell::store`]s.
    #[must_use]
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("swap cell poisoned").clone()
    }

    /// Publish `next`, replacing the current contents.
    pub fn store(&self, next: Arc<T>) {
        *self.slot.lock().expect("swap cell poisoned") = next;
    }

    /// Publish `next` and return what it replaced.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut *self.slot.lock().expect("swap cell poisoned"), next)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SwapCell").field(&self.load()).finish()
    }
}

impl<T: Default> Default for SwapCell<T> {
    fn default() -> Self {
        SwapCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_store() {
        let cell = SwapCell::new(vec![1u32]);
        let before = cell.load();
        cell.store(Arc::new(vec![1, 2]));
        assert_eq!(*before, vec![1], "old snapshot unaffected");
        assert_eq!(*cell.load(), vec![1, 2]);
    }

    #[test]
    fn swap_returns_previous() {
        let cell = SwapCell::new(7u64);
        let prev = cell.swap(Arc::new(9));
        assert_eq!(*prev, 7);
        assert_eq!(*cell.load(), 9);
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        // Writers publish vectors whose elements all equal their length;
        // any reader observing a mixed vector would prove a torn update.
        let cell = Arc::new(SwapCell::new(vec![0usize; 4]));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for n in 1..200 {
                        cell.store(Arc::new(vec![n; n]));
                    }
                });
            }
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..500 {
                        let v = cell.load();
                        assert!(v.iter().all(|&x| x == v.len() || v.iter().all(|&y| y == x)));
                    }
                });
            }
        });
    }
}
