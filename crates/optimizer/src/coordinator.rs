//! [`Coordinator`]: per-key epochs backing the stale-candidate discard
//! protocol.
//!
//! When a hot candidate is enqueued for background optimization, the
//! engine stamps the current epoch of every profile entry the job's
//! snapshot read. Any event that makes that snapshot unreliable —
//! retirement resetting a block's counters, re-formation replacing a
//! region, explicit invalidation — bumps the affected keys' epochs. At
//! install time the worker's result is accepted only if *every* stamped
//! epoch is unchanged; otherwise the candidate is discarded. This is
//! the classic optimistic-concurrency validate step: cheap to take,
//! cheap to check, and it never installs a region formed from a profile
//! that no longer describes the program.

use std::collections::BTreeMap;

/// Monotonic per-key epoch counters.
///
/// Keys absent from the map are implicitly at epoch 0, so the map only
/// grows for keys that were actually invalidated.
#[derive(Clone, Debug, Default)]
pub struct Coordinator<K: Ord> {
    epochs: BTreeMap<K, u64>,
}

impl<K: Ord + Clone> Coordinator<K> {
    /// An empty coordinator (every key at epoch 0).
    #[must_use]
    pub fn new() -> Self {
        Coordinator {
            epochs: BTreeMap::new(),
        }
    }

    /// The current epoch of `key`.
    #[must_use]
    pub fn epoch(&self, key: &K) -> u64 {
        self.epochs.get(key).copied().unwrap_or(0)
    }

    /// Bumps `key`'s epoch, invalidating every stamp taken before the
    /// bump. Returns the new epoch.
    pub fn invalidate(&mut self, key: K) -> u64 {
        let e = self.epochs.entry(key).or_insert(0);
        *e += 1;
        *e
    }

    /// Stamps the current epoch of each key, in order.
    #[must_use]
    pub fn stamp<'a>(&self, keys: impl IntoIterator<Item = &'a K>) -> Vec<(K, u64)>
    where
        K: 'a,
    {
        keys.into_iter()
            .map(|k| (k.clone(), self.epoch(k)))
            .collect()
    }

    /// Whether every stamped epoch is still current.
    #[must_use]
    pub fn still_current(&self, stamps: &[(K, u64)]) -> bool {
        stamps.iter().all(|(k, e)| self.epoch(k) == *e)
    }

    /// Number of keys that have ever been invalidated.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.epochs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_keys_are_epoch_zero() {
        let c: Coordinator<u64> = Coordinator::new();
        assert_eq!(c.epoch(&42), 0);
        assert_eq!(c.touched(), 0);
    }

    #[test]
    fn invalidation_breaks_exactly_the_stamps_that_overlap() {
        let mut c = Coordinator::new();
        let a = c.stamp([&1u64, &2, &3]);
        let b = c.stamp([&4u64, &5]);
        assert!(c.still_current(&a) && c.still_current(&b));

        c.invalidate(2);
        assert!(!c.still_current(&a), "stamp covering key 2 is stale");
        assert!(c.still_current(&b), "disjoint stamp unaffected");

        // Re-stamping after the bump is current again.
        let a2 = c.stamp([&1u64, &2, &3]);
        assert!(c.still_current(&a2));
        assert_eq!(c.epoch(&2), 1);
    }

    #[test]
    fn epochs_are_monotone() {
        let mut c = Coordinator::new();
        assert_eq!(c.invalidate("pc"), 1);
        assert_eq!(c.invalidate("pc"), 2);
        assert_eq!(c.epoch(&"pc"), 2);
        assert_eq!(c.touched(), 1);
    }
}
