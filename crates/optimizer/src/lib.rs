//! Background optimization service for the two-phase DBT.
//!
//! The source paper's two-phase model optimizes a candidate *at the
//! moment* its use counter hits the threshold — profiling stops, the
//! optimizer runs, execution resumes. Production two-phase translators
//! decouple the phases: the execution thread keeps running (and keeps
//! profiling) while optimizer threads form regions in the background,
//! and finished translations are installed atomically. This crate is
//! that decoupling, kept deliberately engine-agnostic so the scheduling
//! machinery can be tested exhaustively without a guest program:
//!
//! * [`OptService`] — a bounded hot-candidate queue drained by N worker
//!   threads; completions are collected and handed back to the
//!   submitting thread on its terms (non-blocking [`OptService::drain`]
//!   during execution, blocking [`OptService::flush`] at shutdown).
//! * [`Coordinator`] — per-key epochs implementing the *stale-candidate
//!   discard* protocol: a job stamps the epochs of every block it read;
//!   if any stamped epoch moved while the job was queued or running
//!   (the block was retired, reformed, or otherwise invalidated), the
//!   result must be discarded, never installed.
//! * [`SwapCell`] — the atomic-swap publication handle the cached
//!   backend keeps its chain table behind, so installs replace the
//!   table wholesale instead of mutating it in place.
//!
//! Everything here is plain `std` (threads, mutexes, condvars) — the
//! workspace builds offline with no external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod service;
pub mod swap;

pub use coordinator::Coordinator;
pub use service::{OptService, ServiceStats};
pub use swap::SwapCell;
