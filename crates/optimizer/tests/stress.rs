//! Concurrency stress: enqueue / install / invalidate racing from
//! multiple threads, with exact counter assertions (ISSUE 6 satellite).
//!
//! The test mirrors the engine's protocol: submitters stamp a snapshot
//! of block epochs and enqueue a job; an invalidator thread keeps
//! bumping epochs (retirements / re-formations); a resolver validates
//! each completion against the coordinator and either "installs" or
//! "discards" it. At the end every candidate must be accounted for —
//! `installed + discarded == completed == enqueued` and
//! `enqueued + rejected == attempts` — and every install's stamps must
//! have been current at the instant of validation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tpdbt_optimizer::{Coordinator, OptService};

/// Deterministic xorshift so the schedule varies without `rand`.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const KEYS: u64 = 16;
const SUBMITTERS: u64 = 4;
const PER_SUBMITTER: u64 = 400;

#[test]
fn enqueue_install_invalidate_race_keeps_exact_counters() {
    // Worker "forms a region": it just echoes the stamps back.
    let service = Arc::new(OptService::new(3, 32, |stamps: Vec<(u64, u64)>| stamps));
    let coord = Arc::new(Mutex::new(Coordinator::<u64>::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let installed = AtomicU64::new(0);
    let discarded = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Invalidator: keeps bumping epochs while submissions race.
        {
            let coord = Arc::clone(&coord);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = 0x9e37_79b9_7f4a_7c15u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = xorshift(&mut rng) % KEYS;
                    coord.lock().unwrap().invalidate(key);
                    std::thread::yield_now();
                }
            });
        }

        // Submitters: stamp a 3-key snapshot, enqueue it.
        let mut handles = Vec::new();
        for t in 0..SUBMITTERS {
            let service = Arc::clone(&service);
            let coord = Arc::clone(&coord);
            handles.push(s.spawn(move || {
                let mut rng = 0xdead_beef ^ (t + 1);
                for _ in 0..PER_SUBMITTER {
                    let keys: Vec<u64> = (0..3).map(|_| xorshift(&mut rng) % KEYS).collect();
                    let stamps = coord.lock().unwrap().stamp(keys.iter());
                    let _ = service.submit(stamps);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);

        // Resolver: validate every completion under the coordinator
        // lock, exactly as the engine does at its install points.
        for stamps in service.flush() {
            let coord = coord.lock().unwrap();
            if coord.still_current(&stamps) {
                installed.fetch_add(1, Ordering::Relaxed);
            } else {
                discarded.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let stats = service.stats();
    let attempts = SUBMITTERS * PER_SUBMITTER;
    assert_eq!(stats.enqueued + stats.rejected, attempts);
    assert_eq!(stats.completed, stats.enqueued);
    assert_eq!(
        installed.load(Ordering::Relaxed) + discarded.load(Ordering::Relaxed),
        stats.completed,
        "every completed candidate is installed or discarded, never lost"
    );

    // Second phase, deterministic: enqueue a batch, then retire every
    // key before resolving — each completion must be discarded.
    let mut batch = 0u64;
    for i in 0..8u64 {
        let key = i % KEYS;
        let stamps = coord.lock().unwrap().stamp([&key]);
        if service.submit(stamps) {
            batch += 1;
        }
    }
    {
        let mut coord = coord.lock().unwrap();
        for key in 0..KEYS {
            coord.invalidate(key);
        }
    }
    let late = service.flush();
    assert_eq!(late.len() as u64, batch);
    let coord = coord.lock().unwrap();
    assert!(
        late.iter().all(|stamps| !coord.still_current(stamps)),
        "every candidate queued before the mass retirement must be stale"
    );
}

#[test]
fn invalidation_after_enqueue_forces_discard() {
    // Deterministic single-candidate version of the race above: the
    // epoch moves while the job sits in the queue, so validation at
    // "install time" must reject it.
    let service = OptService::new(1, 4, |stamps: Vec<(u64, u64)>| stamps);
    let mut coord = Coordinator::new();

    let stamps = coord.stamp([&7u64, &8]);
    assert!(service.submit(stamps));
    coord.invalidate(8); // block 8 retired while the candidate is queued

    let done = service.flush();
    assert_eq!(done.len(), 1);
    assert!(
        !coord.still_current(&done[0]),
        "stale candidate must fail validation"
    );

    // A candidate stamped after the retirement installs fine.
    let fresh = coord.stamp([&7u64, &8]);
    assert!(service.submit(fresh));
    let done = service.flush();
    assert!(coord.still_current(&done[0]));
}
