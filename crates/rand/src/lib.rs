//! Offline stand-in for the small slice of the `rand` 0.8 API this
//! workspace uses (`StdRng::seed_from_u64`, `gen_range`, `gen_bool`).
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by minimal in-repo path crates (DESIGN.md,
//! "Dependency policy"). The generator here is SplitMix64 — *not* the
//! ChaCha12 generator of the real `StdRng` — so streams differ from
//! upstream `rand`, but every consumer in this workspace only relies on
//! determinism-for-a-fixed-seed, which holds.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the one constructor tpdbt uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface: `gen_range` over half-open and inclusive
/// ranges plus Bernoulli draws.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Modulo reduction: bias is < 2^-40 for every span this workspace
    // samples, far below anything the statistical tests can see.
    rng.next_u64() % n
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
int_ranges!(i64, u64, i32, u32, u8, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 behind the `StdRng` name the workspace imports.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one
            // u64 of state, and cannot get stuck at zero.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(-3i64..9);
            assert!((-3..9).contains(&v));
            let w = r.gen_range(2i64..=5);
            assert!((2..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(42);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
