//! Runtime trap errors.

use std::error::Error;
use std::fmt;

use tpdbt_isa::Pc;

/// A guest runtime trap.
///
/// All variants carry the PC of the faulting instruction so workload
/// authors can find the offending guest code.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Faulting instruction address.
        pc: Pc,
    },
    /// A load or store resolved outside memory.
    MemOutOfBounds {
        /// Faulting instruction address.
        pc: Pc,
        /// The effective address.
        addr: i64,
        /// Size of the addressed memory.
        len: usize,
    },
    /// The call stack exceeded its depth limit.
    StackOverflow {
        /// Faulting instruction address.
        pc: Pc,
    },
    /// `ret` executed with an empty call stack.
    StackUnderflow {
        /// Faulting instruction address.
        pc: Pc,
    },
    /// Control reached an address outside the program.
    BadPc {
        /// The out-of-range address.
        pc: Pc,
    },
    /// Execution exceeded the configured fuel budget.
    OutOfFuel {
        /// PC at which fuel ran out.
        pc: Pc,
        /// The budget that was exhausted.
        fuel: u64,
    },
}

impl VmError {
    /// The faulting (or exhausting) instruction address.
    #[must_use]
    pub fn pc(&self) -> Pc {
        match self {
            VmError::DivideByZero { pc }
            | VmError::MemOutOfBounds { pc, .. }
            | VmError::StackOverflow { pc }
            | VmError::StackUnderflow { pc }
            | VmError::BadPc { pc }
            | VmError::OutOfFuel { pc, .. } => *pc,
        }
    }

    /// Whether the trap is a resource-budget exhaustion (fuel) rather
    /// than a guest-program bug. Fault-tolerant harnesses report these
    /// as watchdog kills — the guest did not misbehave, it overran its
    /// budget — while every other trap is a deterministic guest defect
    /// that retrying cannot fix.
    #[must_use]
    pub fn is_resource_exhaustion(&self) -> bool {
        matches!(self, VmError::OutOfFuel { .. })
    }

    /// Stable lowercase trap name for reports and trace events.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            VmError::DivideByZero { .. } => "divide_by_zero",
            VmError::MemOutOfBounds { .. } => "mem_out_of_bounds",
            VmError::StackOverflow { .. } => "stack_overflow",
            VmError::StackUnderflow { .. } => "stack_underflow",
            VmError::BadPc { .. } => "bad_pc",
            VmError::OutOfFuel { .. } => "out_of_fuel",
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivideByZero { pc } => write!(f, "division by zero at {pc}"),
            VmError::MemOutOfBounds { pc, addr, len } => {
                write!(
                    f,
                    "memory access at {pc} to address {addr} outside 0..{len}"
                )
            }
            VmError::StackOverflow { pc } => write!(f, "call stack overflow at {pc}"),
            VmError::StackUnderflow { pc } => write!(f, "return with empty call stack at {pc}"),
            VmError::BadPc { pc } => write!(f, "control transferred outside the program to {pc}"),
            VmError::OutOfFuel { pc, fuel } => {
                write!(f, "execution exceeded fuel budget {fuel} at {pc}")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_pc() {
        for e in [
            VmError::DivideByZero { pc: 3 },
            VmError::MemOutOfBounds {
                pc: 3,
                addr: -1,
                len: 4,
            },
            VmError::StackOverflow { pc: 3 },
            VmError::StackUnderflow { pc: 3 },
            VmError::BadPc { pc: 3 },
            VmError::OutOfFuel { pc: 3, fuel: 10 },
        ] {
            assert!(e.to_string().contains('3'), "{e}");
        }
    }

    #[test]
    fn classification_separates_fuel_from_guest_bugs() {
        let all = [
            VmError::DivideByZero { pc: 1 },
            VmError::MemOutOfBounds {
                pc: 2,
                addr: -1,
                len: 4,
            },
            VmError::StackOverflow { pc: 3 },
            VmError::StackUnderflow { pc: 4 },
            VmError::BadPc { pc: 5 },
            VmError::OutOfFuel { pc: 6, fuel: 10 },
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(VmError::kind_name).collect();
        assert_eq!(names.len(), all.len(), "duplicate kind name");
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.pc(), i as Pc + 1);
            assert_eq!(
                e.is_resource_exhaustion(),
                matches!(e, VmError::OutOfFuel { .. })
            );
        }
    }
}
