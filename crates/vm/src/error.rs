//! Runtime trap errors.

use std::error::Error;
use std::fmt;

use tpdbt_isa::Pc;

/// A guest runtime trap.
///
/// All variants carry the PC of the faulting instruction so workload
/// authors can find the offending guest code.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Faulting instruction address.
        pc: Pc,
    },
    /// A load or store resolved outside memory.
    MemOutOfBounds {
        /// Faulting instruction address.
        pc: Pc,
        /// The effective address.
        addr: i64,
        /// Size of the addressed memory.
        len: usize,
    },
    /// The call stack exceeded its depth limit.
    StackOverflow {
        /// Faulting instruction address.
        pc: Pc,
    },
    /// `ret` executed with an empty call stack.
    StackUnderflow {
        /// Faulting instruction address.
        pc: Pc,
    },
    /// Control reached an address outside the program.
    BadPc {
        /// The out-of-range address.
        pc: Pc,
    },
    /// Execution exceeded the configured fuel budget.
    OutOfFuel {
        /// PC at which fuel ran out.
        pc: Pc,
        /// The budget that was exhausted.
        fuel: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivideByZero { pc } => write!(f, "division by zero at {pc}"),
            VmError::MemOutOfBounds { pc, addr, len } => {
                write!(
                    f,
                    "memory access at {pc} to address {addr} outside 0..{len}"
                )
            }
            VmError::StackOverflow { pc } => write!(f, "call stack overflow at {pc}"),
            VmError::StackUnderflow { pc } => write!(f, "return with empty call stack at {pc}"),
            VmError::BadPc { pc } => write!(f, "control transferred outside the program to {pc}"),
            VmError::OutOfFuel { pc, fuel } => {
                write!(f, "execution exceeded fuel budget {fuel} at {pc}")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_pc() {
        for e in [
            VmError::DivideByZero { pc: 3 },
            VmError::MemOutOfBounds {
                pc: 3,
                addr: -1,
                len: 4,
            },
            VmError::StackOverflow { pc: 3 },
            VmError::StackUnderflow { pc: 3 },
            VmError::BadPc { pc: 3 },
            VmError::OutOfFuel { pc: 3, fuel: 10 },
        ] {
            assert!(e.to_string().contains('3'), "{e}");
        }
    }
}
