//! Run-to-completion interpretation.

use tpdbt_isa::Program;

use crate::error::VmError;
use crate::machine::Machine;
use crate::step::{step, Flow};

/// Default fuel budget: generous enough for every suite workload at the
/// largest scale, small enough to catch accidental infinite loops.
pub const DEFAULT_FUEL: u64 = 4_000_000_000;

/// Aggregate statistics from an interpreter run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic conditional-branch executions.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
}

/// A straightforward fetch–execute interpreter over [`step`].
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    machine: Machine,
    fuel: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program` with the given input stream
    /// and the default fuel budget.
    #[must_use]
    pub fn new(program: &'p Program, input: &[i64]) -> Self {
        Interpreter {
            program,
            machine: Machine::new(program, input),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the fuel budget (maximum dynamic instructions).
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Copies preload images into the machine before running.
    pub fn preload(&mut self, mem: &[(usize, Vec<i64>)], fmem: &[(usize, Vec<f64>)]) {
        self.machine.preload(mem, fmem);
    }

    /// The machine state (final state after [`Interpreter::run`]).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Runs until `halt`.
    ///
    /// # Errors
    ///
    /// Returns any [`VmError`] trap raised by the program, including
    /// [`VmError::OutOfFuel`] if the budget is exhausted first.
    pub fn run(&mut self) -> Result<RunStats, VmError> {
        let mut stats = RunStats::default();
        loop {
            if stats.instructions >= self.fuel {
                return Err(VmError::OutOfFuel {
                    pc: self.machine.pc(),
                    fuel: self.fuel,
                });
            }
            let pc = self.machine.pc();
            let is_cond = matches!(self.program.get(pc), Some(tpdbt_isa::Instr::Br { .. }));
            let flow = step(self.program, &mut self.machine)?;
            stats.instructions += 1;
            if is_cond {
                stats.cond_branches += 1;
            }
            match flow {
                Flow::Next => self.machine.set_pc(pc + 1),
                Flow::Jump { target, taken } => {
                    if is_cond && taken {
                        stats.taken_branches += 1;
                    }
                    self.machine.set_pc(target);
                }
                Flow::Halted => return Ok(stats),
            }
        }
    }
}

/// Convenience: runs `program` on `input` and returns its output words.
///
/// # Errors
///
/// Returns any [`VmError`] trap raised by the program.
///
/// # Example
///
/// ```
/// use tpdbt_isa::{ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.input(Reg::new(0));
/// b.out(Reg::new(0));
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(tpdbt_vm::run_collect(&p, &[9])?, vec![9]);
/// # Ok(())
/// # }
/// ```
pub fn run_collect(program: &Program, input: &[i64]) -> Result<Vec<i64>, VmError> {
    let mut interp = Interpreter::new(program, input);
    interp.run()?;
    Ok(interp.machine().output().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};

    #[test]
    fn counts_instructions_and_branches() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 10, |_| {}).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, &[]);
        let stats = i.run().unwrap();
        // movi + 10 * (addi + br) + halt
        assert_eq!(stats.instructions, 1 + 20 + 1);
        assert_eq!(stats.cond_branches, 10);
        assert_eq!(stats.taken_branches, 9);
    }

    #[test]
    fn fuel_limit_traps() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.bind(top).unwrap();
        b.jmp(top);
        b.halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, &[]).with_fuel(100);
        assert_eq!(i.run(), Err(VmError::OutOfFuel { pc: 0, fuel: 100 }));
    }

    #[test]
    fn run_collect_roundtrips_io() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        b.input(r);
        b.addi(r, r, 100);
        b.out(r);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(run_collect(&p, &[1]).unwrap(), vec![101]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 50, |b| {
            b.out(r);
        })
        .unwrap();
        b.halt();
        let p = b.build().unwrap();
        let a = run_collect(&p, &[]).unwrap();
        let c = run_collect(&p, &[]).unwrap();
        assert_eq!(a, c);
        assert_eq!(a.len(), 50);
    }
}
