//! Single-instruction semantics shared by the interpreter and the DBT.

use tpdbt_isa::{MicroOp, Pc, Program, TermView};

use crate::error::VmError;
use crate::exec::{exec_op, exec_term};
use crate::machine::Machine;

/// Control-flow outcome of executing one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to `pc + 1`.
    Next,
    /// Transfer to an explicit address. For conditional branches,
    /// `taken` reports whether the branch condition held (the event the
    /// translator's `taken` counter records).
    Jump {
        /// The next PC.
        target: Pc,
        /// Whether a conditional branch was taken (`true` for all
        /// unconditional transfers).
        taken: bool,
    },
    /// The program executed `halt`.
    Halted,
}

/// Executes the instruction at the machine's current PC, updating all
/// architectural state except the PC itself, and reports where control
/// goes. Drivers (interpreter, DBT) commit the PC from the returned
/// [`Flow`], which lets them observe branch outcomes for profiling.
///
/// Internally this is decode + execute: the instruction is lowered to
/// its pre-decoded micro form ([`MicroOp`] / [`TermView`], both
/// allocation-free) and run through [`exec_op`] / [`exec_term`] — the
/// same execute half the translation cache in `tpdbt-dbt` replays from
/// its stored [`tpdbt_isa::DecodedBlock`]s, so interpreted and
/// translated execution share one set of operational semantics.
///
/// # Errors
///
/// Returns a [`VmError`] trap for division by zero, out-of-bounds
/// memory, call-stack violations, or an out-of-range PC.
pub fn step(program: &Program, m: &mut Machine) -> Result<Flow, VmError> {
    let pc = m.pc();
    let instr = program.get(pc).ok_or(VmError::BadPc { pc })?;
    if let Some(op) = MicroOp::from_instr(instr) {
        exec_op(&op, pc, m)?;
        return Ok(Flow::Next);
    }
    let term = TermView::of_instr(instr, pc).expect("non-straight-line instr is a terminator");
    exec_term(term, pc, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{Cond, FReg, ProgramBuilder, Reg};

    fn run_one(mut setup: impl FnMut(&mut ProgramBuilder)) -> (Machine, Flow) {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(16);
        b.reserve_fmem(16);
        setup(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[7, 8]);
        let f = step(&p, &mut m).unwrap();
        (m, f)
    }

    #[test]
    fn alu_wrapping_and_logic() {
        let (m, _) = run_one(|b| b.movi(Reg::new(0), i64::MAX));
        assert_eq!(m.reg(0), i64::MAX);
        let mut b = ProgramBuilder::new();
        b.movi(Reg::new(0), i64::MAX);
        b.addi(Reg::new(0), Reg::new(0), 1);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        step(&p, &mut m).unwrap();
        m.set_pc(1);
        step(&p, &mut m).unwrap();
        assert_eq!(m.reg(0), i64::MIN);
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut b = ProgramBuilder::new();
        b.div(Reg::new(0), Reg::new(1), Reg::new(2));
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        assert_eq!(step(&p, &mut m), Err(VmError::DivideByZero { pc: 0 }));
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("l");
        b.br_imm(Cond::Eq, Reg::new(0), 0, l);
        b.bind(l).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        assert_eq!(
            step(&p, &mut m).unwrap(),
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
        m.set_reg(0, 5);
        m.set_pc(0);
        assert_eq!(step(&p, &mut m).unwrap(), Flow::Next);
    }

    #[test]
    fn jump_table_wraps_negative_selectors() {
        let mut b = ProgramBuilder::new();
        let (x, y) = (b.fresh_label("x"), b.fresh_label("y"));
        b.jmp_table(Reg::new(0), vec![x, y]);
        b.bind(x).unwrap();
        b.halt();
        b.bind(y).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        m.set_reg(0, -1); // rem_euclid(-1, 2) == 1
        assert_eq!(
            step(&p, &mut m).unwrap(),
            Flow::Jump {
                target: 2,
                taken: true
            }
        );
        m.set_reg(0, 4);
        m.set_pc(0);
        assert_eq!(
            step(&p, &mut m).unwrap(),
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
    }

    #[test]
    fn call_and_ret_roundtrip() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_label("f");
        b.call(f); // 0
        b.halt(); // 1
        b.bind(f).unwrap();
        b.ret(); // 2
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        assert_eq!(
            step(&p, &mut m).unwrap(),
            Flow::Jump {
                target: 2,
                taken: true
            }
        );
        m.set_pc(2);
        assert_eq!(
            step(&p, &mut m).unwrap(),
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
        assert_eq!(m.call_depth(), 0);
    }

    #[test]
    fn float_ops_and_conversions() {
        let mut b = ProgramBuilder::new();
        b.fmovi(FReg::new(0), 1.5);
        b.fmovi(FReg::new(1), 2.0);
        b.fmul(FReg::new(2), FReg::new(0), FReg::new(1));
        b.ftoi(Reg::new(0), FReg::new(2));
        b.fcmp_lt(Reg::new(1), FReg::new(0), FReg::new(1));
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        for pc in 0..5 {
            m.set_pc(pc);
            step(&p, &mut m).unwrap();
        }
        assert_eq!(m.freg(2), 3.0);
        assert_eq!(m.reg(0), 3);
        assert_eq!(m.reg(1), 1);
    }

    #[test]
    fn nan_converts_to_zero() {
        let mut b = ProgramBuilder::new();
        b.fmovi(FReg::new(0), f64::NAN);
        b.ftoi(Reg::new(0), FReg::new(0));
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        m.set_reg(0, 99);
        step(&p, &mut m).unwrap();
        m.set_pc(1);
        step(&p, &mut m).unwrap();
        assert_eq!(m.reg(0), 0);
    }

    #[test]
    fn memory_roundtrip_and_io() {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(4);
        b.input(Reg::new(0)); // r0 = 7
        b.movi(Reg::new(1), 2);
        b.store(Reg::new(0), Reg::new(1), 1); // mem[3] = 7
        b.load(Reg::new(2), Reg::new(1), 1); // r2 = 7
        b.out(Reg::new(2));
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[7]);
        for pc in 0..5 {
            m.set_pc(pc);
            step(&p, &mut m).unwrap();
        }
        assert_eq!(m.output(), &[7]);
    }

    #[test]
    fn bad_pc_traps() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        m.set_pc(42);
        assert_eq!(step(&p, &mut m), Err(VmError::BadPc { pc: 42 }));
    }
}
