//! The execute half of instruction semantics, operating on pre-decoded
//! micro-ops.
//!
//! [`crate::step`] (the reference interpreter's dispatch) decodes each
//! guest instruction into a [`MicroOp`] / [`TermView`] and immediately
//! executes it here; the translation cache in `tpdbt-dbt` decodes once
//! at translation time and replays the stored micro-ops through the
//! same two functions. Because both paths share this single
//! implementation, translated code computes exactly what the
//! interpreter computes — including trap payloads, which carry the
//! guest `pc` passed in explicitly.

use tpdbt_isa::{AluOp, FpuOp, MicroOp, MicroOperand, Pc, TermView};

use crate::error::VmError;
use crate::machine::Machine;
use crate::step::Flow;

#[inline]
fn operand(m: &Machine, op: MicroOperand) -> i64 {
    match op {
        MicroOperand::Reg(r) => m.reg(r as usize),
        MicroOperand::Imm(v) => v,
    }
}

/// Executes one straight-line micro-op located at guest address `pc`
/// (used only for trap payloads), updating architectural state.
///
/// # Errors
///
/// Returns a [`VmError`] trap for division by zero or out-of-bounds
/// memory, exactly as the instruction at `pc` would under
/// [`crate::step`].
#[inline]
pub fn exec_op(op: &MicroOp, pc: Pc, m: &mut Machine) -> Result<(), VmError> {
    match *op {
        MicroOp::Alu { op, dst, a, b } => {
            let x = m.reg(a as usize);
            let y = operand(m, b);
            let v = match op {
                AluOp::Add => x.wrapping_add(y),
                AluOp::Sub => x.wrapping_sub(y),
                AluOp::Mul => x.wrapping_mul(y),
                AluOp::Div => {
                    if y == 0 {
                        return Err(VmError::DivideByZero { pc });
                    }
                    x.wrapping_div(y)
                }
                AluOp::Rem => {
                    if y == 0 {
                        return Err(VmError::DivideByZero { pc });
                    }
                    x.wrapping_rem(y)
                }
                AluOp::And => x & y,
                AluOp::Or => x | y,
                AluOp::Xor => x ^ y,
                AluOp::Shl => x.wrapping_shl((y & 63) as u32),
                AluOp::Shr => x.wrapping_shr((y & 63) as u32),
            };
            m.set_reg(dst as usize, v);
        }
        MicroOp::Mov { dst, src } => {
            m.set_reg(dst as usize, m.reg(src as usize));
        }
        MicroOp::MovI { dst, imm } => {
            m.set_reg(dst as usize, imm);
        }
        MicroOp::Fpu { op, dst, a, b } => {
            let x = m.freg(a as usize);
            let y = m.freg(b as usize);
            let v = match op {
                FpuOp::Add => x + y,
                FpuOp::Sub => x - y,
                FpuOp::Mul => x * y,
                FpuOp::Div => x / y,
                FpuOp::Max => x.max(y),
                FpuOp::Min => x.min(y),
            };
            m.set_freg(dst as usize, v);
        }
        MicroOp::FMov { dst, src } => {
            m.set_freg(dst as usize, m.freg(src as usize));
        }
        MicroOp::FMovI { dst, imm } => {
            m.set_freg(dst as usize, imm);
        }
        MicroOp::IToF { dst, src } => {
            m.set_freg(dst as usize, m.reg(src as usize) as f64);
        }
        MicroOp::FToI { dst, src } => {
            let v = m.freg(src as usize);
            let out = if v.is_nan() { 0 } else { v as i64 };
            m.set_reg(dst as usize, out);
        }
        MicroOp::FCmpLt { dst, a, b } => {
            let v = i64::from(m.freg(a as usize) < m.freg(b as usize));
            m.set_reg(dst as usize, v);
        }
        MicroOp::Load { dst, base, offset } => {
            let idx = m.mem_index(m.reg(base as usize), offset, pc)?;
            m.set_reg(dst as usize, m.mem(idx));
        }
        MicroOp::Store { src, base, offset } => {
            let idx = m.mem_index(m.reg(base as usize), offset, pc)?;
            m.set_mem(idx, m.reg(src as usize));
        }
        MicroOp::FLoad { dst, base, offset } => {
            let idx = m.fmem_index(m.reg(base as usize), offset, pc)?;
            m.set_freg(dst as usize, m.fmem(idx));
        }
        MicroOp::FStore { src, base, offset } => {
            let idx = m.fmem_index(m.reg(base as usize), offset, pc)?;
            m.set_fmem(idx, m.freg(src as usize));
        }
        MicroOp::In { dst } => {
            let v = m.next_input();
            m.set_reg(dst as usize, v);
        }
        MicroOp::Out { src } => {
            m.push_output(m.reg(src as usize));
        }
    }
    Ok(())
}

/// Executes a pre-decoded terminator located at guest address `pc`
/// (used for trap payloads and the call return address check) and
/// reports where control goes.
///
/// # Errors
///
/// Returns a [`VmError`] trap for call-stack violations, exactly as
/// the instruction at `pc` would under [`crate::step`].
#[inline]
pub fn exec_term(term: TermView<'_>, pc: Pc, m: &mut Machine) -> Result<Flow, VmError> {
    Ok(match term {
        TermView::Jump { target } => Flow::Jump {
            target,
            taken: true,
        },
        TermView::Branch {
            cond, a, b, taken, ..
        } => {
            if cond.eval(m.reg(a as usize), operand(m, b)) {
                Flow::Jump {
                    target: taken,
                    taken: true,
                }
            } else {
                Flow::Next
            }
        }
        TermView::Switch { selector, table } => {
            let raw = m.reg(selector as usize);
            let idx = (raw.rem_euclid(table.len() as i64)) as usize;
            Flow::Jump {
                target: table[idx],
                taken: true,
            }
        }
        TermView::Call { target, next } => {
            m.push_call(next, pc)?;
            Flow::Jump {
                target,
                taken: true,
            }
        }
        TermView::Return => {
            let target = m.pop_call(pc)?;
            Flow::Jump {
                target,
                taken: true,
            }
        }
        TermView::Halt => Flow::Halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{Cond, DecodedBlock, Instr, ProgramBuilder, Reg};

    /// Pre-decoded execution of a whole block equals stepping the same
    /// instructions through the interpreter dispatch.
    #[test]
    fn decoded_block_replay_matches_step() {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(8);
        let top = b.fresh_label("top");
        b.movi(Reg::new(1), 3); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 5); // 1
        b.store(Reg::new(0), Reg::new(1), 0); // 2
        b.out(Reg::new(0)); // 3
        b.br_imm(Cond::Lt, Reg::new(0), 20, top); // 4
        b.halt(); // 5
        let p = b.build().unwrap();

        let mut by_step = Machine::new(&p, &[]);
        let mut by_replay = by_step.clone();

        let block = DecodedBlock::decode(&p, 0).unwrap();
        for (i, op) in block.ops.iter().enumerate() {
            exec_op(op, block.start + i, &mut by_replay).unwrap();
        }
        by_replay.set_pc(block.term_pc());
        let replay_flow = exec_term(block.term.view(), block.term_pc(), &mut by_replay).unwrap();

        let mut step_flow = Flow::Halted;
        for pc in block.start..block.end {
            by_step.set_pc(pc);
            step_flow = crate::step(&p, &mut by_step).unwrap();
        }
        assert_eq!(replay_flow, step_flow);
        assert_eq!(by_replay, by_step);
    }

    #[test]
    fn traps_carry_the_guest_pc() {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(1);
        b.load(Reg::new(0), Reg::new(1), 7); // 0: oob
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        let op = MicroOp::from_instr(p.get(0).unwrap()).unwrap();
        assert!(matches!(
            exec_op(&op, 0, &mut m),
            Err(VmError::MemOutOfBounds { pc: 0, addr: 7, .. })
        ));
        let div = MicroOp::Alu {
            op: tpdbt_isa::AluOp::Div,
            dst: 0,
            a: 0,
            b: MicroOperand::Imm(0),
        };
        assert_eq!(
            exec_op(&div, 9, &mut m),
            Err(VmError::DivideByZero { pc: 9 })
        );
        assert_eq!(
            exec_term(TermView::Return, 4, &mut m),
            Err(VmError::StackUnderflow { pc: 4 })
        );
    }

    #[test]
    fn call_pushes_decoded_return_address() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_label("f");
        b.call(f); // 0
        b.halt(); // 1
        b.bind(f).unwrap();
        b.ret(); // 2
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        let term = TermView::of_instr(p.get(0).unwrap(), 0).unwrap();
        assert_eq!(
            exec_term(term, 0, &mut m).unwrap(),
            Flow::Jump {
                target: 2,
                taken: true
            }
        );
        assert_eq!(m.call_depth(), 1);
        assert_eq!(
            exec_term(TermView::Return, 2, &mut m).unwrap(),
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
    }

    /// `step`'s decode half produces micro-ops that round-trip every
    /// straight-line instruction kind.
    #[test]
    fn every_straight_line_instr_predecodes() {
        use tpdbt_isa::FReg;
        let instrs = [
            Instr::Mov {
                dst: Reg::new(1),
                src: Reg::new(2),
            },
            Instr::FMov {
                dst: FReg::new(1),
                src: FReg::new(2),
            },
            Instr::IToF {
                dst: FReg::new(0),
                src: Reg::new(0),
            },
            Instr::FCmpLt {
                dst: Reg::new(0),
                a: FReg::new(0),
                b: FReg::new(1),
            },
            Instr::In { dst: Reg::new(0) },
        ];
        for i in &instrs {
            assert!(MicroOp::from_instr(i).is_some(), "{i:?}");
        }
    }
}
