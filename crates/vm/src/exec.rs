//! The execute half of instruction semantics, operating on pre-decoded
//! micro-ops.
//!
//! [`crate::step`] (the reference interpreter's dispatch) decodes each
//! guest instruction into a [`MicroOp`] / [`TermView`] and immediately
//! executes it here; the translation cache in `tpdbt-dbt` decodes once
//! at translation time and replays the stored micro-ops through the
//! same two functions. Because both paths share this single
//! implementation, translated code computes exactly what the
//! interpreter computes — including trap payloads, which carry the
//! guest `pc` passed in explicitly.
//!
//! # Handler layout
//!
//! Dispatch is split by operation class. The integer ALU / move /
//! memory / I/O arms — the hot classes on the integer-dominated guest
//! workloads — are matched first and stay inline in [`exec_op`]; the
//! floating-point class lives in a separate out-of-line handler so the
//! hot dispatch loop stays small. Fused superinstructions
//! ([`FusedOp`]) get dedicated handlers in [`exec_fused`] that perform
//! the same architectural writes in the same order as their
//! constituents and trap with the constituent's guest pc, so fusion is
//! observationally invisible. [`exec_body`] runs either block
//! representation through the matching handler set; every execution
//! backend funnels through it, which is what makes bitwise backend
//! parity hold by construction.

use tpdbt_isa::{AluOp, BlockBody, FpuOp, FusedOp, MicroOp, MicroOperand, Pc, TermView};

use crate::error::VmError;
use crate::machine::Machine;
use crate::step::Flow;

#[inline]
fn operand(m: &Machine, op: MicroOperand) -> i64 {
    match op {
        MicroOperand::Reg(r) => m.reg(r as usize),
        MicroOperand::Imm(v) => v,
    }
}

/// One shared ALU evaluator used by the 1:1 handler and every fused
/// handler, so a fused op cannot drift from its constituents.
#[inline(always)]
fn alu_eval(op: AluOp, x: i64, y: i64, pc: Pc) -> Result<i64, VmError> {
    Ok(match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::Div => {
            if y == 0 {
                return Err(VmError::DivideByZero { pc });
            }
            x.wrapping_div(y)
        }
        AluOp::Rem => {
            if y == 0 {
                return Err(VmError::DivideByZero { pc });
            }
            x.wrapping_rem(y)
        }
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => x.wrapping_shl((y & 63) as u32),
        AluOp::Shr => x.wrapping_shr((y & 63) as u32),
    })
}

/// The trap-free ALU evaluator for [`tpdbt_isa::AluSpec`] constituents
/// — the fuser guarantees `Div`/`Rem` never reach here, which lets the
/// hot fused handlers skip `Result` plumbing entirely.
#[inline(always)]
fn alu_nt(op: AluOp, x: i64, y: i64) -> i64 {
    match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::Div | AluOp::Rem => {
            unreachable!("trapping ALU op in a trap-free fused constituent")
        }
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => x.wrapping_shl((y & 63) as u32),
        AluOp::Shr => x.wrapping_shr((y & 63) as u32),
    }
}

/// One shared FPU evaluator used by the 1:1 handler and the fused FPU
/// handlers. FPU ops never trap.
#[inline(always)]
fn fpu_eval(op: FpuOp, x: f64, y: f64) -> f64 {
    match op {
        FpuOp::Add => x + y,
        FpuOp::Sub => x - y,
        FpuOp::Mul => x * y,
        FpuOp::Div => x / y,
        FpuOp::Max => x.max(y),
        FpuOp::Min => x.min(y),
    }
}

/// Executes one straight-line micro-op located at guest address `pc`
/// (used only for trap payloads), updating architectural state.
///
/// # Errors
///
/// Returns a [`VmError`] trap for division by zero or out-of-bounds
/// memory, exactly as the instruction at `pc` would under
/// [`crate::step`].
#[inline]
pub fn exec_op(op: &MicroOp, pc: Pc, m: &mut Machine) -> Result<(), VmError> {
    match *op {
        MicroOp::Alu { op, dst, a, b } => {
            let v = alu_eval(op, m.reg(a as usize), operand(m, b), pc)?;
            m.set_reg(dst as usize, v);
        }
        MicroOp::MovI { dst, imm } => {
            m.set_reg(dst as usize, imm);
        }
        MicroOp::Mov { dst, src } => {
            m.set_reg(dst as usize, m.reg(src as usize));
        }
        MicroOp::Load { dst, base, offset } => {
            let idx = m.mem_index(m.reg(base as usize), offset, pc)?;
            m.set_reg(dst as usize, m.mem(idx));
        }
        MicroOp::Store { src, base, offset } => {
            let idx = m.mem_index(m.reg(base as usize), offset, pc)?;
            m.set_mem(idx, m.reg(src as usize));
        }
        MicroOp::In { dst } => {
            let v = m.next_input();
            m.set_reg(dst as usize, v);
        }
        MicroOp::Out { src } => {
            m.push_output(m.reg(src as usize));
        }
        ref float => return exec_float_op(float, pc, m),
    }
    Ok(())
}

/// The floating-point handler class, kept out of line so the integer
/// dispatch above stays compact. Only float-class ops are routed here.
#[inline(never)]
fn exec_float_op(op: &MicroOp, pc: Pc, m: &mut Machine) -> Result<(), VmError> {
    match *op {
        MicroOp::Fpu { op, dst, a, b } => {
            let v = fpu_eval(op, m.freg(a as usize), m.freg(b as usize));
            m.set_freg(dst as usize, v);
        }
        MicroOp::FMov { dst, src } => {
            m.set_freg(dst as usize, m.freg(src as usize));
        }
        MicroOp::FMovI { dst, imm } => {
            m.set_freg(dst as usize, imm);
        }
        MicroOp::IToF { dst, src } => {
            m.set_freg(dst as usize, m.reg(src as usize) as f64);
        }
        MicroOp::FToI { dst, src } => {
            let v = m.freg(src as usize);
            let out = if v.is_nan() { 0 } else { v as i64 };
            m.set_reg(dst as usize, out);
        }
        MicroOp::FCmpLt { dst, a, b } => {
            let v = i64::from(m.freg(a as usize) < m.freg(b as usize));
            m.set_reg(dst as usize, v);
        }
        MicroOp::FLoad { dst, base, offset } => {
            let idx = m.fmem_index(m.reg(base as usize), offset, pc)?;
            m.set_freg(dst as usize, m.fmem(idx));
        }
        MicroOp::FStore { src, base, offset } => {
            let idx = m.fmem_index(m.reg(base as usize), offset, pc)?;
            m.set_fmem(idx, m.freg(src as usize));
        }
        ref int => unreachable!("integer-class op routed to the float handler: {int:?}"),
    }
    Ok(())
}

/// Executes one fused superinstruction whose first constituent sits at
/// guest address `pc`.
///
/// Each specialized variant performs the same architectural writes in
/// the same order as its constituent micro-ops; a constituent at
/// offset `k` within the window traps with guest pc `pc + k`. Generic
/// [`FusedOp::Pair`] / [`FusedOp::Triple`] / [`FusedOp::One`] windows
/// simply replay their constituents through [`exec_op`].
///
/// # Errors
///
/// Exactly the traps the constituent micro-ops would raise, with the
/// constituent's own guest pc in the payload.
#[inline(always)]
pub fn exec_fused(f: &FusedOp, pc: Pc, m: &mut Machine) -> Result<(), VmError> {
    match *f {
        FusedOp::ConstAlu {
            imm_dst,
            imm,
            op,
            dst,
            a,
        } => {
            // MovI writes first: the ALU may read `a == imm_dst`.
            m.set_reg(imm_dst as usize, imm);
            let v = alu_eval(op, m.reg(a as usize), imm, pc + 1)?;
            m.set_reg(dst as usize, v);
        }
        FusedOp::LoadAlu {
            ld_dst,
            base,
            offset,
            op,
            dst,
            a,
        } => {
            let idx = m.mem_index(m.reg(base as usize), offset, pc)?;
            let loaded = m.mem(idx);
            m.set_reg(ld_dst as usize, loaded);
            let v = alu_eval(op, m.reg(a as usize), loaded, pc + 1)?;
            m.set_reg(dst as usize, v);
        }
        FusedOp::AluStore {
            op,
            dst,
            a,
            b,
            base,
            offset,
        } => {
            let v = alu_eval(op, m.reg(a as usize), operand(m, b), pc)?;
            m.set_reg(dst as usize, v);
            // Base is read after the ALU write: `base` may equal `dst`.
            let idx = m.mem_index(m.reg(base as usize), offset, pc + 1)?;
            m.set_mem(idx, v);
        }
        FusedOp::LoadAluStore {
            ld_dst,
            ld_base,
            ld_offset,
            op,
            dst,
            a,
            st_base,
            st_offset,
        } => {
            let idx = m.mem_index(m.reg(ld_base as usize), ld_offset, pc)?;
            let loaded = m.mem(idx);
            m.set_reg(ld_dst as usize, loaded);
            let v = alu_eval(op, m.reg(a as usize), loaded, pc + 1)?;
            m.set_reg(dst as usize, v);
            let idx = m.mem_index(m.reg(st_base as usize), st_offset, pc + 2)?;
            m.set_mem(idx, v);
        }
        FusedOp::AddChain { d1, i1, d2, i2 } => {
            m.set_reg(d1 as usize, m.reg(d1 as usize).wrapping_add(i1));
            m.set_reg(d2 as usize, m.reg(d2 as usize).wrapping_add(i2));
        }
        FusedOp::AluAlu { s1, s2 } => {
            let v = alu_nt(s1.op, m.reg(s1.a as usize), operand(m, s1.b));
            m.set_reg(s1.dst as usize, v);
            let v = alu_nt(s2.op, m.reg(s2.a as usize), operand(m, s2.b));
            m.set_reg(s2.dst as usize, v);
        }
        FusedOp::AluAlu3 { s1, s2, s3 } => {
            let v = alu_nt(s1.op, m.reg(s1.a as usize), operand(m, s1.b));
            m.set_reg(s1.dst as usize, v);
            let v = alu_nt(s2.op, m.reg(s2.a as usize), operand(m, s2.b));
            m.set_reg(s2.dst as usize, v);
            let v = alu_nt(s3.op, m.reg(s3.a as usize), operand(m, s3.b));
            m.set_reg(s3.dst as usize, v);
        }
        FusedOp::FpuFpu {
            op1,
            d1,
            a1,
            b1,
            op2,
            d2,
            a2,
            b2,
        } => {
            let v = fpu_eval(op1, m.freg(a1 as usize), m.freg(b1 as usize));
            m.set_freg(d1 as usize, v);
            let v = fpu_eval(op2, m.freg(a2 as usize), m.freg(b2 as usize));
            m.set_freg(d2 as usize, v);
        }
        FusedOp::AluFLoad {
            s,
            ld_dst,
            base,
            offset,
        } => {
            let v = alu_nt(s.op, m.reg(s.a as usize), operand(m, s.b));
            m.set_reg(s.dst as usize, v);
            let idx = m.fmem_index(m.reg(base as usize), offset, pc + 1)?;
            m.set_freg(ld_dst as usize, m.fmem(idx));
        }
        FusedOp::FLoadFpu {
            ld_dst,
            base,
            offset,
            op,
            dst,
            a,
            b,
        } => {
            let idx = m.fmem_index(m.reg(base as usize), offset, pc)?;
            m.set_freg(ld_dst as usize, m.fmem(idx));
            let v = fpu_eval(op, m.freg(a as usize), m.freg(b as usize));
            m.set_freg(dst as usize, v);
        }
        FusedOp::Pair(ref x, ref y) => {
            exec_op(x, pc, m)?;
            exec_op(y, pc + 1, m)?;
        }
        FusedOp::Triple(ref x, ref y, ref z) => {
            exec_op(x, pc, m)?;
            exec_op(y, pc + 1, m)?;
            exec_op(z, pc + 2, m)?;
        }
        FusedOp::One(ref x) => exec_op(x, pc, m)?,
    }
    Ok(())
}

/// Runs a whole block body — flat or fused — whose first instruction
/// sits at guest address `start`, leaving the machine exactly as
/// stepping the constituent instructions would.
///
/// Every execution backend (interpreter replay, cached chains, fused
/// traces) funnels straight-line execution through this one function,
/// which is what makes bitwise backend parity hold by construction.
///
/// # Errors
///
/// Propagates the first constituent trap, with that constituent's
/// guest pc in the payload.
#[inline]
pub fn exec_body(body: &BlockBody, start: Pc, m: &mut Machine) -> Result<(), VmError> {
    match body {
        BlockBody::Flat(ops) => {
            for (pc, op) in (start..).zip(ops.iter()) {
                exec_op(op, pc, m)?;
            }
        }
        BlockBody::Fused(ops) => {
            let mut pc = start;
            for f in ops.iter() {
                exec_fused(f, pc, m)?;
                pc += f.width();
            }
        }
    }
    Ok(())
}

/// Executes a pre-decoded terminator located at guest address `pc`
/// (used for trap payloads and the call return address check) and
/// reports where control goes.
///
/// # Errors
///
/// Returns a [`VmError`] trap for call-stack violations, exactly as
/// the instruction at `pc` would under [`crate::step`].
#[inline]
pub fn exec_term(term: TermView<'_>, pc: Pc, m: &mut Machine) -> Result<Flow, VmError> {
    Ok(match term {
        TermView::Jump { target } => Flow::Jump {
            target,
            taken: true,
        },
        TermView::Branch {
            cond, a, b, taken, ..
        } => {
            if cond.eval(m.reg(a as usize), operand(m, b)) {
                Flow::Jump {
                    target: taken,
                    taken: true,
                }
            } else {
                Flow::Next
            }
        }
        TermView::Switch { selector, table } => {
            let raw = m.reg(selector as usize);
            let idx = (raw.rem_euclid(table.len() as i64)) as usize;
            Flow::Jump {
                target: table[idx],
                taken: true,
            }
        }
        TermView::Call { target, next } => {
            m.push_call(next, pc)?;
            Flow::Jump {
                target,
                taken: true,
            }
        }
        TermView::Return => {
            let target = m.pop_call(pc)?;
            Flow::Jump {
                target,
                taken: true,
            }
        }
        TermView::Halt => Flow::Halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{Cond, DecodedBlock, Instr, ProgramBuilder, Reg};

    /// Pre-decoded execution of a whole block equals stepping the same
    /// instructions through the interpreter dispatch.
    #[test]
    fn decoded_block_replay_matches_step() {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(8);
        let top = b.fresh_label("top");
        b.movi(Reg::new(1), 3); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 5); // 1
        b.store(Reg::new(0), Reg::new(1), 0); // 2
        b.out(Reg::new(0)); // 3
        b.br_imm(Cond::Lt, Reg::new(0), 20, top); // 4
        b.halt(); // 5
        let p = b.build().unwrap();

        let mut by_step = Machine::new(&p, &[]);
        let mut by_replay = by_step.clone();
        let mut by_fused = by_step.clone();

        let block = DecodedBlock::decode(&p, 0).unwrap();
        exec_body(&block.body, block.start, &mut by_replay).unwrap();
        by_replay.set_pc(block.term_pc());
        let replay_flow = exec_term(block.term.view(), block.term_pc(), &mut by_replay).unwrap();

        // The fused representation of the same block is indistinguishable.
        let fused = block.fused();
        exec_body(&fused.body, fused.start, &mut by_fused).unwrap();
        by_fused.set_pc(fused.term_pc());
        let fused_flow = exec_term(fused.term.view(), fused.term_pc(), &mut by_fused).unwrap();

        let mut step_flow = Flow::Halted;
        for pc in block.start..block.end {
            by_step.set_pc(pc);
            step_flow = crate::step(&p, &mut by_step).unwrap();
        }
        assert_eq!(replay_flow, step_flow);
        assert_eq!(by_replay, by_step);
        assert_eq!(fused_flow, step_flow);
        assert_eq!(by_fused, by_step);
    }

    #[test]
    fn traps_carry_the_guest_pc() {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(1);
        b.load(Reg::new(0), Reg::new(1), 7); // 0: oob
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        let op = MicroOp::from_instr(p.get(0).unwrap()).unwrap();
        assert!(matches!(
            exec_op(&op, 0, &mut m),
            Err(VmError::MemOutOfBounds { pc: 0, addr: 7, .. })
        ));
        let div = MicroOp::Alu {
            op: tpdbt_isa::AluOp::Div,
            dst: 0,
            a: 0,
            b: MicroOperand::Imm(0),
        };
        assert_eq!(
            exec_op(&div, 9, &mut m),
            Err(VmError::DivideByZero { pc: 9 })
        );
        assert_eq!(
            exec_term(TermView::Return, 4, &mut m),
            Err(VmError::StackUnderflow { pc: 4 })
        );
    }

    /// A constituent trapping at offset `k` of a fused window reports
    /// guest pc `base + k`, exactly as the unfused replay would.
    #[test]
    fn fused_traps_carry_the_constituent_pc() {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(4);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);

        // ConstAlu whose ALU half divides by the (zero) immediate:
        // MovI at pc 10 succeeds, Alu at pc 11 traps.
        let window = [
            MicroOp::MovI { dst: 3, imm: 0 },
            MicroOp::Alu {
                op: AluOp::Div,
                dst: 0,
                a: 0,
                b: MicroOperand::Reg(3),
            },
        ];
        let fused = tpdbt_isa::fuse_ops(&window);
        assert_eq!(fused.len(), 1);
        assert_eq!(
            exec_fused(&fused[0], 10, &mut m),
            Err(VmError::DivideByZero { pc: 11 })
        );
        // The MovI half still committed before the trap.
        assert_eq!(m.reg(3), 0);

        // AluStore whose store half is out of bounds: trap pc is the
        // store's address (base + 1), and the ALU write committed.
        let window = [
            MicroOp::Alu {
                op: AluOp::Add,
                dst: 1,
                a: 1,
                b: MicroOperand::Imm(41),
            },
            MicroOp::Store {
                src: 1,
                base: 0,
                offset: 99,
            },
        ];
        let fused = tpdbt_isa::fuse_ops(&window);
        assert_eq!(fused.len(), 1);
        assert!(matches!(
            exec_fused(&fused[0], 20, &mut m),
            Err(VmError::MemOutOfBounds { pc: 21, .. })
        ));
        assert_eq!(m.reg(1), 41);
    }

    #[test]
    fn call_pushes_decoded_return_address() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_label("f");
        b.call(f); // 0
        b.halt(); // 1
        b.bind(f).unwrap();
        b.ret(); // 2
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        let term = TermView::of_instr(p.get(0).unwrap(), 0).unwrap();
        assert_eq!(
            exec_term(term, 0, &mut m).unwrap(),
            Flow::Jump {
                target: 2,
                taken: true
            }
        );
        assert_eq!(m.call_depth(), 1);
        assert_eq!(
            exec_term(TermView::Return, 2, &mut m).unwrap(),
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
    }

    /// `step`'s decode half produces micro-ops that round-trip every
    /// straight-line instruction kind.
    #[test]
    fn every_straight_line_instr_predecodes() {
        use tpdbt_isa::FReg;
        let instrs = [
            Instr::Mov {
                dst: Reg::new(1),
                src: Reg::new(2),
            },
            Instr::FMov {
                dst: FReg::new(1),
                src: FReg::new(2),
            },
            Instr::IToF {
                dst: FReg::new(0),
                src: Reg::new(0),
            },
            Instr::FCmpLt {
                dst: Reg::new(0),
                a: FReg::new(0),
                b: FReg::new(1),
            },
            Instr::In { dst: Reg::new(0) },
        ];
        for i in &instrs {
            assert!(MicroOp::from_instr(i).is_some(), "{i:?}");
        }
    }
}
