//! Reference interpreter for the `tpdbt` guest ISA.
//!
//! The interpreter serves two roles in the reproduction:
//!
//! 1. **Validation substrate** — workload generators check their
//!    programs behave as intended by running them here, independent of
//!    the translator.
//! 2. **Execution semantics** — the two-phase translator in `tpdbt-dbt`
//!    reuses [`step`] so translated code is guaranteed to compute exactly
//!    what the interpreter computes; the translator only changes *when
//!    profiling and optimization happen*, never the architectural state.
//!
//! # Example
//!
//! ```
//! use tpdbt_isa::{ProgramBuilder, Reg, Cond};
//! use tpdbt_vm::{Machine, Interpreter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let r = Reg::new(0);
//! b.input(r);
//! b.muli(r, r, 2);
//! b.out(r);
//! b.halt();
//! let p = b.build()?;
//!
//! let mut interp = Interpreter::new(&p, &[21]);
//! let stats = interp.run()?;
//! assert_eq!(interp.machine().output(), &[42]);
//! assert_eq!(stats.instructions, 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod machine;
mod run;
mod step;

pub use error::VmError;
pub use exec::{exec_body, exec_fused, exec_op, exec_term};
pub use machine::{Machine, MAX_CALL_DEPTH};
pub use run::{run_collect, Interpreter, RunStats, DEFAULT_FUEL};
pub use step::{step, Flow};
