//! Architectural machine state.

use tpdbt_isa::{Pc, Program, NUM_FREGS, NUM_REGS};

use crate::error::VmError;

/// Maximum call-stack depth before a [`VmError::StackOverflow`] trap.
pub const MAX_CALL_DEPTH: usize = 1 << 16;

/// The guest machine's architectural state: registers, memories, call
/// stack, input cursor, and output buffer.
///
/// State is independent of how code is executed — the interpreter and
/// the DBT both drive a `Machine` through [`crate::step`].
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    regs: [i64; NUM_REGS],
    fregs: [f64; NUM_FREGS],
    mem: Vec<i64>,
    fmem: Vec<f64>,
    call_stack: Vec<Pc>,
    input: Vec<i64>,
    input_pos: usize,
    output: Vec<i64>,
    pc: Pc,
}

impl Machine {
    /// Creates machine state for `program` with the given input stream.
    ///
    /// Memories are zero-initialised at the sizes the program declared;
    /// the PC starts at the program entry.
    #[must_use]
    pub fn new(program: &Program, input: &[i64]) -> Self {
        Machine {
            regs: [0; NUM_REGS],
            fregs: [0.0; NUM_FREGS],
            mem: vec![0; program.mem_words()],
            fmem: vec![0.0; program.fmem_words()],
            call_stack: Vec::new(),
            input: input.to_vec(),
            input_pos: 0,
            output: Vec::new(),
            pc: program.entry(),
        }
    }

    /// Copies preload images into memory (used by
    /// [`tpdbt_isa::BuiltProgram`] data sections).
    ///
    /// # Panics
    ///
    /// Panics if an image exceeds the reserved memory, which indicates a
    /// builder bug (the builder grows reservations automatically).
    pub fn preload(&mut self, mem_image: &[(usize, Vec<i64>)], fmem_image: &[(usize, Vec<f64>)]) {
        for (addr, words) in mem_image {
            self.mem[*addr..*addr + words.len()].copy_from_slice(words);
        }
        for (addr, words) in fmem_image {
            self.fmem[*addr..*addr + words.len()].copy_from_slice(words);
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Sets the program counter (used by execution drivers).
    pub fn set_pc(&mut self, pc: Pc) {
        self.pc = pc;
    }

    /// Reads integer register `i`.
    #[must_use]
    pub fn reg(&self, i: usize) -> i64 {
        self.regs[i]
    }

    /// Writes integer register `i`.
    pub fn set_reg(&mut self, i: usize, v: i64) {
        self.regs[i] = v;
    }

    /// Reads float register `i`.
    #[must_use]
    pub fn freg(&self, i: usize) -> f64 {
        self.fregs[i]
    }

    /// Writes float register `i`.
    pub fn set_freg(&mut self, i: usize, v: f64) {
        self.fregs[i] = v;
    }

    /// Resolves `base + offset` into an integer-memory index.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MemOutOfBounds`] when the effective address is
    /// negative or past the end of memory.
    pub fn mem_index(&self, base: i64, offset: i64, pc: Pc) -> Result<usize, VmError> {
        let addr = base.wrapping_add(offset);
        if addr < 0 || addr as usize >= self.mem.len() {
            return Err(VmError::MemOutOfBounds {
                pc,
                addr,
                len: self.mem.len(),
            });
        }
        Ok(addr as usize)
    }

    /// Resolves `base + offset` into a float-memory index.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MemOutOfBounds`] when the effective address is
    /// negative or past the end of float memory.
    pub fn fmem_index(&self, base: i64, offset: i64, pc: Pc) -> Result<usize, VmError> {
        let addr = base.wrapping_add(offset);
        if addr < 0 || addr as usize >= self.fmem.len() {
            return Err(VmError::MemOutOfBounds {
                pc,
                addr,
                len: self.fmem.len(),
            });
        }
        Ok(addr as usize)
    }

    /// Reads integer memory at a resolved index.
    #[must_use]
    pub fn mem(&self, index: usize) -> i64 {
        self.mem[index]
    }

    /// Writes integer memory at a resolved index.
    pub fn set_mem(&mut self, index: usize, v: i64) {
        self.mem[index] = v;
    }

    /// Reads float memory at a resolved index.
    #[must_use]
    pub fn fmem(&self, index: usize) -> f64 {
        self.fmem[index]
    }

    /// Writes float memory at a resolved index.
    pub fn set_fmem(&mut self, index: usize, v: f64) {
        self.fmem[index] = v;
    }

    /// Pops the next input word, or `-1` once the stream is exhausted.
    pub fn next_input(&mut self) -> i64 {
        match self.input.get(self.input_pos) {
            Some(&v) => {
                self.input_pos += 1;
                v
            }
            None => -1,
        }
    }

    /// Appends a word to the output buffer.
    pub fn push_output(&mut self, v: i64) {
        self.output.push(v);
    }

    /// The words the program has written so far.
    #[must_use]
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Pushes a return address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::StackOverflow`] past [`MAX_CALL_DEPTH`] frames.
    pub fn push_call(&mut self, ret: Pc, pc: Pc) -> Result<(), VmError> {
        if self.call_stack.len() >= MAX_CALL_DEPTH {
            return Err(VmError::StackOverflow { pc });
        }
        self.call_stack.push(ret);
        Ok(())
    }

    /// Pops a return address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::StackUnderflow`] when no call frame is open.
    pub fn pop_call(&mut self, pc: Pc) -> Result<Pc, VmError> {
        self.call_stack.pop().ok_or(VmError::StackUnderflow { pc })
    }

    /// Current call-stack depth.
    #[must_use]
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{ProgramBuilder, Reg};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(8);
        b.reserve_fmem(4);
        b.movi(Reg::new(0), 1);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn fresh_machine_is_zeroed_at_entry() {
        let p = tiny();
        let m = Machine::new(&p, &[1, 2]);
        assert_eq!(m.pc(), p.entry());
        assert_eq!(m.reg(5), 0);
        assert_eq!(m.freg(3), 0.0);
        assert_eq!(m.mem(7), 0);
        assert_eq!(m.call_depth(), 0);
        assert!(m.output().is_empty());
    }

    #[test]
    fn input_stream_yields_sentinel_after_end() {
        let p = tiny();
        let mut m = Machine::new(&p, &[10, 20]);
        assert_eq!(m.next_input(), 10);
        assert_eq!(m.next_input(), 20);
        assert_eq!(m.next_input(), -1);
        assert_eq!(m.next_input(), -1);
    }

    #[test]
    fn mem_index_bounds() {
        let p = tiny();
        let m = Machine::new(&p, &[]);
        assert_eq!(m.mem_index(3, 4, 0).unwrap(), 7);
        assert!(matches!(
            m.mem_index(3, 5, 9),
            Err(VmError::MemOutOfBounds {
                pc: 9,
                addr: 8,
                len: 8
            })
        ));
        assert!(matches!(
            m.mem_index(-1, 0, 0),
            Err(VmError::MemOutOfBounds { .. })
        ));
        assert!(matches!(
            m.fmem_index(0, 4, 0),
            Err(VmError::MemOutOfBounds { len: 4, .. })
        ));
    }

    #[test]
    fn call_stack_push_pop() {
        let p = tiny();
        let mut m = Machine::new(&p, &[]);
        m.push_call(17, 0).unwrap();
        assert_eq!(m.call_depth(), 1);
        assert_eq!(m.pop_call(1).unwrap(), 17);
        assert!(matches!(
            m.pop_call(2),
            Err(VmError::StackUnderflow { pc: 2 })
        ));
    }

    #[test]
    fn preload_populates_memory() {
        let p = tiny();
        let mut m = Machine::new(&p, &[]);
        m.preload(&[(2, vec![5, 6])], &[(1, vec![0.25])]);
        assert_eq!(m.mem(2), 5);
        assert_eq!(m.mem(3), 6);
        assert_eq!(m.fmem(1), 0.25);
    }
}
