//! Property tests for superinstruction fusion: for any legal
//! straight-line micro-op window, fusing is architecturally invisible
//! and exactly invertible.
//!
//! Two invariants are pinned over random windows and random machine
//! states:
//!
//! 1. **Round trip** — `unfuse_ops(fuse_ops(w)) == w`, and the fused
//!    widths tile the window exactly.
//! 2. **Semantics** — executing the fused window leaves the machine
//!    bitwise identical to executing the flat window, including on
//!    trapping windows: the same [`tpdbt_vm::VmError`] (with the same
//!    constituent guest pc) at the same point, with the same partial
//!    architectural effects committed before the trap.
//!
//! The window generator deliberately over-samples the fusable idioms
//! (const+binop, load+op, op+store, load+op+store, counter-bump
//! chains) and aliased registers, and includes trapping ops (division,
//! out-of-bounds memory traffic) so trap-pc attribution is exercised,
//! not just the happy path.

use proptest::prelude::*;

use tpdbt_isa::{fuse_ops, unfuse_ops, BlockBody, DecodedBlock, FReg, ProgramBuilder, Reg};
use tpdbt_vm::{exec_body, exec_fused, exec_op, Machine, VmError};

/// One generator token: either a single random instruction or a
/// fusable idiom of 2-3 instructions.
type Tok = (u8, u8, u8, u8, i64);

fn emit(b: &mut ProgramBuilder, tok: Tok) {
    let (code, d8, a8, x8, imm) = tok;
    let r = |i: u8| Reg::new(i % 8);
    let f = |i: u8| FReg::new(i % 4);
    let (d, a, x) = (r(d8), r(a8), r(x8));
    match code % 21 {
        0 => b.movi(d, imm),
        1 => b.addi(d, a, imm),
        2 => b.add(d, a, x),
        3 => b.div(d, a, x), // traps when x == 0
        4 => b.shl(d, a, imm),
        5 => b.load(d, a, imm.rem_euclid(20)), // may trap OOB (mem = 16)
        6 => b.store(a, x, imm.rem_euclid(20)),
        7 => b.muli(d, a, imm),
        8 => b.xor(d, a, imm),
        9 => b.mov(d, a),
        10 => b.fmovi(f(x8), imm as f64 * 0.5),
        11 => b.fadd(f(d8), f(a8), f(x8)),
        12 => b.itof(f(x8), a),
        13 => b.ftoi(d, f(x8)),
        14 => b.fcmp_lt(d, f(a8), f(x8)),
        15 => b.out(a),
        16 => b.input(d), // traps when input is exhausted
        // Fusable idioms, over-sampled (aliasing included: `d` may
        // equal `a`).
        17 => {
            // const + binop (ConstAlu)
            b.movi(x, imm);
            b.add(d, a, x);
        }
        18 => {
            // load + op (LoadAlu)
            b.load(x, a, imm.rem_euclid(16));
            b.add(d, d, x);
        }
        19 => {
            // op + store (AluStore)
            b.addi(d, a, imm);
            b.store(d, x, imm.rem_euclid(16));
        }
        _ => {
            // counter-bump chain (AddChain)
            b.addi(d, d, 1);
            b.addi(a, a, imm);
        }
    }
}

/// Builds a straight-line window program and returns it with its
/// decoded flat micro-ops.
fn window(toks: &[Tok]) -> (tpdbt_isa::Program, Vec<tpdbt_isa::MicroOp>) {
    let mut b = ProgramBuilder::new();
    b.reserve_mem(16);
    b.reserve_fmem(8);
    for &tok in toks {
        emit(&mut b, tok);
    }
    b.halt();
    let p = b.build().expect("straight-line windows always validate");
    let block = DecodedBlock::decode(&p, 0).expect("entry block decodes");
    let ops = block.body.flat_ops().into_owned();
    (p, ops)
}

/// Executes `ops` flat, one micro-op at a time from guest pc 0.
fn run_flat(ops: &[tpdbt_isa::MicroOp], m: &mut Machine) -> Result<(), VmError> {
    for (k, op) in ops.iter().enumerate() {
        exec_op(op, k, m)?;
    }
    Ok(())
}

fn arb_toks() -> impl Strategy<Value = Vec<Tok>> {
    prop::collection::vec(
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            -40i64..40,
        ),
        1..24,
    )
}

fn arb_state() -> impl Strategy<Value = (Vec<i64>, Vec<f64>, Vec<i64>, Vec<i64>)> {
    (
        prop::collection::vec(-100i64..100, 8),
        prop::collection::vec(-100.0f64..100.0, 4),
        prop::collection::vec(-100i64..100, 16),
        prop::collection::vec(-100i64..100, 0..4),
    )
}

fn load_state(m: &mut Machine, state: &(Vec<i64>, Vec<f64>, Vec<i64>, Vec<i64>)) {
    for (i, &v) in state.0.iter().enumerate() {
        m.set_reg(i, v);
    }
    for (i, &v) in state.1.iter().enumerate() {
        m.set_freg(i, v);
    }
    for (i, &v) in state.2.iter().enumerate() {
        m.set_mem(i, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Fusing then unfusing any legal window is the identity, and the
    /// fused widths tile the window.
    #[test]
    fn fuse_then_unfuse_is_identity(toks in arb_toks()) {
        let (_, ops) = window(&toks);
        let fused = fuse_ops(&ops);
        prop_assert_eq!(&unfuse_ops(&fused)[..], &ops[..]);
        let width: usize = fused.iter().map(|f| f.width()).sum();
        prop_assert_eq!(width, ops.len());
    }

    /// Fused execution reproduces flat execution bit for bit on random
    /// machine states: same result (same trap, same pc) and same final
    /// architectural state — registers, floats, memory, output.
    #[test]
    fn fused_window_matches_flat_on_random_states(
        toks in arb_toks(),
        state in arb_state(),
    ) {
        let (p, ops) = window(&toks);
        let mut flat_m = Machine::new(&p, &state.3);
        load_state(&mut flat_m, &state);
        let fused_m0 = flat_m.clone();

        let flat_r = run_flat(&ops, &mut flat_m);

        // Via exec_fused directly.
        let mut fused_m = fused_m0.clone();
        let fused_r = (|| {
            let mut pc = 0;
            for fop in fuse_ops(&ops).iter() {
                exec_fused(fop, pc, &mut fused_m)?;
                pc += fop.width();
            }
            Ok(())
        })();
        prop_assert_eq!(&flat_r, &fused_r, "trap divergence (exec_fused)");
        prop_assert_eq!(&flat_m, &fused_m, "state divergence (exec_fused)");

        // Via the shared body funnel (what the backends execute).
        let mut body_m = fused_m0.clone();
        let body = BlockBody::Fused(fuse_ops(&ops));
        let body_r = exec_body(&body, 0, &mut body_m);
        prop_assert_eq!(&flat_r, &body_r, "trap divergence (exec_body)");
        prop_assert_eq!(&flat_m, &body_m, "state divergence (exec_body)");
    }
}
