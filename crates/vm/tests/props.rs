//! Property tests for the interpreter: architectural invariants over
//! random instruction sequences.

use proptest::prelude::*;

use tpdbt_isa::{Cond, FReg, ProgramBuilder, Reg};
use tpdbt_vm::{run_collect, Interpreter, Machine};

/// A random straight-line arithmetic program over small constants,
/// ending in out+halt.
fn arb_linear_program() -> impl Strategy<Value = (tpdbt_isa::Program, Vec<i64>)> {
    (
        prop::collection::vec((0u8..6, -50i64..50), 1..40),
        prop::collection::vec(-100i64..100, 0..8),
    )
        .prop_map(|(ops, input)| {
            let mut b = ProgramBuilder::new();
            let acc = Reg::new(0);
            b.reserve_mem(8);
            for (op, imm) in ops {
                match op {
                    0 => b.addi(acc, acc, imm),
                    1 => b.subi(acc, acc, imm),
                    2 => b.muli(acc, acc, imm % 7),
                    3 => b.xor(acc, acc, imm),
                    4 => b.input(acc),
                    _ => b.shl(acc, acc, imm.rem_euclid(8)),
                }
            }
            b.out(acc);
            b.halt();
            (b.build().expect("linear programs always validate"), input)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The interpreter is deterministic and always terminates on
    /// straight-line code, executing exactly program-length
    /// instructions.
    #[test]
    fn linear_programs_terminate_deterministically((p, input) in arb_linear_program()) {
        let mut i1 = Interpreter::new(&p, &input);
        let s1 = i1.run().unwrap();
        prop_assert_eq!(s1.instructions, p.len() as u64);
        prop_assert_eq!(s1.cond_branches, 0);
        let out2 = run_collect(&p, &input).unwrap();
        prop_assert_eq!(i1.machine().output(), &out2[..]);
    }

    /// Branch statistics are consistent: taken ≤ conditional ≤ total.
    #[test]
    fn branch_stats_are_consistent(iters in 1i64..500, bias in 0i64..16) {
        let mut b = ProgramBuilder::new();
        let (i, x) = (Reg::new(0), Reg::new(1));
        let top = b.fresh_label("top");
        let skip = b.fresh_label("skip");
        b.movi(i, 0);
        b.bind(top).unwrap();
        b.and(x, i, 15);
        b.br_imm(Cond::Lt, x, bias, skip);
        b.addi(x, x, 1);
        b.bind(skip).unwrap();
        b.addi(i, i, 1);
        b.br_imm(Cond::Lt, i, iters, top);
        b.halt();
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p, &[]);
        let stats = interp.run().unwrap();
        prop_assert!(stats.taken_branches <= stats.cond_branches);
        prop_assert!(stats.cond_branches <= stats.instructions);
        prop_assert_eq!(stats.cond_branches, 2 * iters as u64);
    }

    /// Memory loads observe the most recent store (simple coherence)
    /// for arbitrary in-bounds addresses and values.
    #[test]
    fn store_load_coherence(addr in 0i64..64, v1 in any::<i64>(), v2 in any::<i64>()) {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(64);
        let (a, x) = (Reg::new(0), Reg::new(1));
        b.movi(a, addr);
        b.movi(x, v1);
        b.store(x, a, 0);
        b.movi(x, v2);
        b.store(x, a, 0);
        b.load(Reg::new(2), a, 0);
        b.out(Reg::new(2));
        b.halt();
        let p = b.build().unwrap();
        prop_assert_eq!(run_collect(&p, &[]).unwrap(), vec![v2]);
    }

    /// Float arithmetic runs the same as host f64 arithmetic.
    #[test]
    fn float_semantics_match_host(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let mut b = ProgramBuilder::new();
        let (f0, f1, f2) = (FReg::new(0), FReg::new(1), FReg::new(2));
        b.fmovi(f0, x);
        b.fmovi(f1, y);
        b.fadd(f2, f0, f1);
        b.fmul(f2, f2, f2);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p, &[]);
        for pc in 0..4 {
            m.set_pc(pc);
            tpdbt_vm::step(&p, &mut m).unwrap();
        }
        let expect = (x + y) * (x + y);
        prop_assert_eq!(m.freg(2), expect);
    }

    /// The fuel budget is respected exactly: with fuel f < needed, the
    /// run traps; with fuel = needed, it completes.
    #[test]
    fn fuel_is_exact(pad in 0usize..30) {
        let mut b = ProgramBuilder::new();
        for _ in 0..pad {
            b.movi(Reg::new(0), 1);
        }
        b.halt();
        let p = b.build().unwrap();
        let needed = p.len() as u64;
        let mut ok = Interpreter::new(&p, &[]).with_fuel(needed);
        prop_assert!(ok.run().is_ok());
        if needed > 1 {
            let mut starved = Interpreter::new(&p, &[]).with_fuel(needed - 1);
            prop_assert!(starved.run().is_err());
        }
    }
}
