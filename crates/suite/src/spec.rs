//! Benchmark behaviour specifications.
//!
//! A benchmark's *dynamic* character lives in its input stream: the
//! stream is divided into [`Segment`]s, each fixing the steering-branch
//! biases, inner-loop trip-count ranges, and dispatch mix for its slice
//! of the run. Phase behaviour (Mcf), warm-up (Gzip), and slow drift
//! (annealers) are all segment sequences.

/// INT or FP suite membership.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// SPEC2000 INT analog (control-intensive).
    Int,
    /// SPEC2000 FP analog (loop-intensive).
    Fp,
}

/// Maximum number of steering branches a template may use.
pub const MAX_BRANCHES: usize = 6;

/// One contiguous slice of the input stream with fixed behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Fraction of the total record count this segment covers (the
    /// final segment absorbs rounding).
    pub frac: f64,
    /// Per-steering-branch taken probabilities (unused entries
    /// ignored). For search templates, `biases[0]` is the recursion
    /// steering-bit density.
    pub biases: [f64; MAX_BRANCHES],
    /// Inclusive trip-count range of the first inner loop (paper
    /// classes: low < 10, median 10–50, high > 50).
    pub trip1: (i64, i64),
    /// Inclusive trip-count range of the second inner loop / recursion
    /// depth.
    pub trip2: (i64, i64),
    /// Weights for the dispatch selector (switch arm / opcode mix).
    /// Empty means uniform.
    pub mix: Vec<f64>,
}

impl Segment {
    /// A convenience constructor with uniform mix.
    #[must_use]
    pub fn new(frac: f64, biases: &[f64], trip1: (i64, i64), trip2: (i64, i64)) -> Self {
        let mut b = [0.5; MAX_BRANCHES];
        b[..biases.len()].copy_from_slice(biases);
        Segment {
            frac,
            biases: b,
            trip1,
            trip2,
            mix: Vec::new(),
        }
    }

    /// Sets the dispatch mix.
    #[must_use]
    pub fn with_mix(mut self, mix: Vec<f64>) -> Self {
        self.mix = mix;
        self
    }
}

/// Record field layout shared by all templates (packed into one `i64`
/// input word):
///
/// | bits    | field                      |
/// |---------|----------------------------|
/// | 0..6    | steering bits `b0..b5`     |
/// | 8..16   | trip1 − 1 (0..255)         |
/// | 16..22  | trip2 − 1 (0..63)          |
/// | 24..28  | dispatch selector (0..15)  |
pub mod fields {
    /// Extracts steering bit `i` (0-based).
    #[must_use]
    pub fn steer(word: i64, i: usize) -> bool {
        (word >> i) & 1 == 1
    }

    /// Extracts the first trip count (≥ 1).
    #[must_use]
    pub fn trip1(word: i64) -> i64 {
        ((word >> 8) & 0xFF) + 1
    }

    /// Extracts the second trip count (≥ 1).
    #[must_use]
    pub fn trip2(word: i64) -> i64 {
        ((word >> 16) & 0x3F) + 1
    }

    /// Extracts the dispatch selector.
    #[must_use]
    pub fn selector(word: i64) -> i64 {
        (word >> 24) & 0xF
    }

    /// Packs the fields into a record word.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range.
    #[must_use]
    pub fn pack(steer_bits: u8, trip1: i64, trip2: i64, selector: i64) -> i64 {
        assert!((1..=256).contains(&trip1), "trip1 {trip1} out of range");
        assert!((1..=64).contains(&trip2), "trip2 {trip2} out of range");
        assert!(
            (0..=15).contains(&selector),
            "selector {selector} out of range"
        );
        i64::from(steer_bits & 0x3F) | ((trip1 - 1) << 8) | ((trip2 - 1) << 16) | (selector << 24)
    }
}

#[cfg(test)]
mod tests {
    use super::fields::*;
    use super::*;

    #[test]
    fn pack_and_extract_roundtrip() {
        let w = pack(0b101101, 200, 33, 7);
        assert!(steer(w, 0));
        assert!(!steer(w, 1));
        assert!(steer(w, 2));
        assert!(steer(w, 3));
        assert!(!steer(w, 4));
        assert!(steer(w, 5));
        assert_eq!(trip1(w), 200);
        assert_eq!(trip2(w), 33);
        assert_eq!(selector(w), 7);
        assert!(
            w >= 0,
            "records must be non-negative (negative is the sentinel)"
        );
    }

    #[test]
    fn extremes_roundtrip() {
        let w = pack(0, 1, 1, 0);
        assert_eq!((trip1(w), trip2(w), selector(w)), (1, 1, 0));
        let w = pack(0x3F, 256, 64, 15);
        assert_eq!((trip1(w), trip2(w), selector(w)), (256, 64, 15));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_trip_panics() {
        let _ = pack(0, 300, 1, 0);
    }

    #[test]
    fn segment_constructor_fills_biases() {
        let s = Segment::new(0.5, &[0.9, 0.1], (2, 8), (1, 4));
        assert_eq!(s.biases[0], 0.9);
        assert_eq!(s.biases[1], 0.1);
        assert_eq!(s.biases[2], 0.5);
        assert!(s.mix.is_empty());
        let s = s.with_mix(vec![1.0, 2.0]);
        assert_eq!(s.mix.len(), 2);
    }
}
