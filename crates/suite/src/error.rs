//! Suite errors.

use std::error::Error;
use std::fmt;

/// Errors from workload lookup and construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuiteError {
    /// No benchmark with this name exists.
    UnknownBenchmark {
        /// The requested name.
        name: String,
    },
    /// A generator produced an invalid guest program (a suite bug).
    Build {
        /// The benchmark whose generator failed.
        name: &'static str,
        /// The underlying ISA error, stringified.
        detail: String,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark `{name}` (see tpdbt_suite::all_names)")
            }
            SuiteError::Build { name, detail } => {
                write!(
                    f,
                    "generator for `{name}` produced an invalid program: {detail}"
                )
            }
        }
    }
}

impl Error for SuiteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_benchmark() {
        assert!(SuiteError::UnknownBenchmark {
            name: "nope".into()
        }
        .to_string()
        .contains("nope"));
        assert!(SuiteError::Build {
            name: "mcf",
            detail: "x".into()
        }
        .to_string()
        .contains("mcf"));
    }
}
