//! Synthetic SPEC CPU2000 analog workloads for the two-phase DBT study.
//!
//! SPEC CPU2000 is proprietary, so this crate provides 26 named analogs
//! (12 INT, 14 FP) built from three guest-program templates:
//!
//! * **loop-nest processors** ([`gen::loopnest`]) — read input records
//!   and run data-dependent inner loops and steering branches
//!   (compressors, solvers, annealers, stencils);
//! * **bytecode interpreters** ([`gen::interp`]) — a jump-table dispatch
//!   loop whose opcode mix is the input (perlbmk, gap);
//! * **recursive searchers** ([`gen::search`]) — call/ret tree walks
//!   steered by input bits (crafty, eon, vortex).
//!
//! Every benchmark has a **ref** and a **train** input. The *dynamic*
//! behaviour the paper reports per benchmark — Mcf's phase changes and
//! trip-count inversion, Gzip's warm-up that ends near 1 000 block
//! visits, Perlbmk's wildly unrepresentative training input, Wupwise's
//! bias shift that persists until ~1M visits, Lucas/Apsi's training
//! inputs in a different trip-count regime, FP's heavily-biased stable
//! branches — is encoded in each analog's input-segment specification
//! (see [`registry`] for the full table with paper citations).
//!
//! # Example
//!
//! ```
//! use tpdbt_suite::{workload, InputKind, Scale};
//!
//! # fn main() -> Result<(), tpdbt_suite::SuiteError> {
//! let w = workload("mcf", Scale::Tiny, InputKind::Ref)?;
//! assert_eq!(w.name, "mcf");
//! assert!(w.input.len() > 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod gen;
pub mod registry;
mod spec;
mod workload;

pub use error::SuiteError;
pub use registry::{all_names, fleet_names, fp_names, int_names, workload, workload_versioned};
pub use spec::{fields, BenchClass, Segment};
pub use workload::{InputKind, Scale, Workload};
