//! The recursive-search template: call/ret tree walks steered by input
//! bits — the shape of crafty, eon, and vortex, where hot branches live
//! inside a recursive evaluation function.

use tpdbt_isa::{BuiltProgram, Cond, IsaError, ProgramBuilder, Reg};

/// Structural knobs for a search program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchShape {
    /// Extra evaluation ops at each tree node.
    pub eval_ops: usize,
}

const W: Reg = Reg::new(0);
const DEPTH: Reg = Reg::new(5);
const STEER: Reg = Reg::new(2);
const ACC: Reg = Reg::new(3);
const BITS: Reg = Reg::new(6);
const SP: Reg = Reg::new(11);
const SCRATCH: Reg = Reg::new(9);

/// Builds the search program.
///
/// Each record descends a tree: the recursion depth comes from the
/// record's trip2 field, and at each level the node branches on
/// steering bit `level % 6` — a set bit expands **two** children, a
/// clear bit one, so the paper-relevant branch probabilities equal the
/// input bit densities and the work per record is exponential in the
/// bit density.
///
/// # Errors
///
/// Returns [`IsaError`] only on internal template bugs.
pub fn build(name: &str, shape: SearchShape) -> Result<BuiltProgram, IsaError> {
    let mut b = ProgramBuilder::named(name);
    // Manual value stack for saved depths (recursion ≤ 64 levels).
    b.reserve_mem(4096);

    let outer = b.fresh_label("outer");
    let end = b.fresh_label("end");
    let search = b.fresh_label("search");

    b.movi(ACC, 0);
    b.movi(SP, 0);
    b.bind(outer)?;
    b.input(W);
    b.br_imm(Cond::Lt, W, 0, end);
    // depth = trip2 field (spec keeps it small: 4..10).
    b.shr(DEPTH, W, 16);
    b.and(DEPTH, DEPTH, 0x3F);
    b.addi(DEPTH, DEPTH, 1);
    b.mov(BITS, W);
    b.call(search);
    b.jmp(outer);

    b.bind(end)?;
    b.out(ACC);
    b.halt();

    // fn search(depth=DEPTH, bits=BITS):
    //   saves depth on the value stack so both children see the same
    //   remaining depth.
    b.bind(search)?;
    let leaf = b.fresh_label("leaf");
    let single = b.fresh_label("single");
    let done = b.fresh_label("done");
    b.store(DEPTH, SP, 0);
    b.addi(SP, SP, 1);
    b.subi(DEPTH, DEPTH, 1);
    b.br_imm(Cond::Le, DEPTH, 0, leaf);
    // Node evaluation.
    b.add(ACC, ACC, DEPTH);
    for i in 0..shape.eval_ops {
        if i % 2 == 0 {
            b.xor(SCRATCH, ACC, BITS);
        } else {
            b.addi(ACC, ACC, 1);
        }
    }
    // Steering bit: level % 6 of the record bits.
    b.rem(STEER, DEPTH, 6);
    b.shr(STEER, BITS, STEER);
    b.and(STEER, STEER, 1);
    b.br_imm(Cond::Eq, STEER, 0, single);
    // Two children.
    b.call(search);
    // Restore depth for the second child (the callee restored the
    // *saved* value; re-derive the decremented one).
    b.subi(SCRATCH, SP, 1);
    b.load(DEPTH, SCRATCH, 0);
    b.subi(DEPTH, DEPTH, 1);
    b.call(search);
    b.jmp(done);
    b.bind(single)?;
    b.call(search);
    b.bind(done)?;
    b.jmp(leaf);
    b.bind(leaf)?;
    b.subi(SP, SP, 1);
    b.load(DEPTH, SP, 0);
    b.ret();

    b.build_with_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_input;
    use crate::spec::Segment;

    fn input(density: f64, depth: (i64, i64), records: usize) -> Vec<i64> {
        let seg = Segment::new(1.0, &[density; 6], (2, 4), depth);
        generate_input(&[seg], records, 11)
    }

    #[test]
    fn builds_and_runs() {
        let built = build("search", SearchShape { eval_ops: 2 }).unwrap();
        let out = tpdbt_vm::run_collect(&built.program, &input(0.5, (4, 8), 50)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn work_grows_with_bit_density() {
        let built = build("search", SearchShape { eval_ops: 1 }).unwrap();
        let run = |density: f64| {
            let mut i = tpdbt_vm::Interpreter::new(&built.program, &input(density, (8, 8), 50));
            i.run().unwrap().instructions
        };
        assert!(
            run(0.9) > run(0.1) * 3,
            "dense trees must expand more nodes"
        );
    }

    #[test]
    fn call_stack_balances() {
        let built = build("search", SearchShape { eval_ops: 0 }).unwrap();
        let words = input(0.7, (4, 9), 100);
        let mut i = tpdbt_vm::Interpreter::new(&built.program, &words);
        i.run().unwrap();
        assert_eq!(i.machine().call_depth(), 0);
    }

    #[test]
    fn deterministic() {
        let built = build("search", SearchShape { eval_ops: 2 }).unwrap();
        let words = input(0.6, (4, 8), 80);
        assert_eq!(
            tpdbt_vm::run_collect(&built.program, &words).unwrap(),
            tpdbt_vm::run_collect(&built.program, &words).unwrap()
        );
    }
}
