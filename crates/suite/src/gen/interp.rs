//! The bytecode-interpreter template: a jump-table dispatch loop whose
//! opcode stream is the input — the shape of perlbmk and gap, whose
//! initial-profile behaviour is dominated by the opcode mix.

use tpdbt_isa::{structured, BuiltProgram, Cond, IsaError, ProgramBuilder, Reg};

/// Structural knobs for an interpreter program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterpShape {
    /// Number of opcode handlers (2..=16).
    pub opcodes: usize,
    /// Extra work per handler (arithmetic ops).
    pub handler_ops: usize,
    /// Give every handler a structurally *unique* body (a k-dependent
    /// steering-diamond chain) instead of the uniform two-branch shape.
    /// The paper analogs keep this off — their handlers are deliberate
    /// structural twins, like real threaded-interpreter handlers. The
    /// fleet families turn it on so the digest-independent fingerprint
    /// (`tpdbt-fleet`) can match handlers across inputs and versions.
    pub distinct_handlers: bool,
}

const W: Reg = Reg::new(0);
const OP: Reg = Reg::new(4);
const ACC: Reg = Reg::new(3);
const STEER: Reg = Reg::new(2);
const TRIP: Reg = Reg::new(1);
const SCRATCH: Reg = Reg::new(9);

/// Builds the interpreter program.
///
/// Handler `k`'s body depends on `k`: every third handler runs an
/// inner loop (trip count from the record), and every handler branches
/// on two steering bits (`k % 6` and `(k + 3) % 6`), so the hot
/// handler set — and therefore the hot-block profile — follows the
/// opcode mix, and the conditional-branch weight is dominated by the
/// handlers rather than loop latches (perlbmk's profile is its script's
/// branch behaviour, not loop trip counts).
///
/// # Errors
///
/// Returns [`IsaError`] only on internal template bugs.
///
/// # Panics
///
/// Panics if `opcodes` is outside `2..=16`.
pub fn build(name: &str, shape: InterpShape) -> Result<BuiltProgram, IsaError> {
    assert!((2..=16).contains(&shape.opcodes), "opcodes out of range");
    let mut b = ProgramBuilder::named(name);
    b.reserve_mem(64);

    let dispatch = b.fresh_label("dispatch");
    let end = b.fresh_label("end");

    b.movi(ACC, 0);
    b.bind(dispatch)?;
    b.input(W);
    b.br_imm(Cond::Lt, W, 0, end);
    b.shr(OP, W, 24);
    b.and(OP, OP, 0xF);

    let arms: Vec<structured::Arm> = (0..shape.opcodes)
        .map(|k| {
            let handler_ops = shape.handler_ops;
            let distinct = shape.distinct_handlers;
            Box::new(move |b: &mut ProgramBuilder| {
                emit_handler(b, k, handler_ops, distinct);
            }) as structured::Arm
        })
        .collect();
    structured::switch(&mut b, OP, arms)?;
    b.jmp(dispatch);

    b.bind(end)?;
    b.out(ACC);
    b.halt();
    b.build_with_data()
}

fn emit_handler(b: &mut ProgramBuilder, k: usize, handler_ops: usize, distinct: bool) {
    b.addi(ACC, ACC, k as i64 + 1);
    for i in 0..handler_ops {
        if i % 2 == 0 {
            b.xor(SCRATCH, ACC, k as i64);
        } else {
            b.addi(ACC, ACC, 1);
        }
    }
    if k.is_multiple_of(3) {
        // Loopy handler: trip count from the record.
        b.shr(TRIP, W, 8);
        b.and(TRIP, TRIP, 0xFF);
        b.addi(TRIP, TRIP, 1);
        let head = b.fresh_label(format!("h{k}_loop"));
        b.bind(head).expect("fresh label");
        b.add(ACC, ACC, W);
        b.subi(TRIP, TRIP, 1);
        b.br_imm(Cond::Gt, TRIP, 0, head);
    }
    if distinct {
        // Structurally unique body: `1 + k % 4` steering diamonds, the
        // first one's taken arm padded with `k / 4` jump-linked blocks.
        // `(k % 4, k / 4)` is unique for k in 0..16, so no two handlers
        // are graph-isomorphic and a shape-only fingerprint can tell
        // every handler — and every block inside one — apart.
        let diamonds = 1 + k % 4;
        let pad = k / 4;
        for i in 0..diamonds {
            let bit = (k + i) % 6;
            b.shr(STEER, W, bit as i64);
            b.and(STEER, STEER, 1);
            structured::if_else(
                b,
                Cond::Eq,
                STEER,
                1,
                |b| {
                    if i == 0 {
                        for p in 0..pad {
                            let l = b.fresh_label(format!("h{k}_pad{p}"));
                            b.jmp(l);
                            b.bind(l).expect("fresh label");
                        }
                    }
                    b.addi(ACC, ACC, 5);
                },
                |b| {
                    b.subi(ACC, ACC, 2);
                },
            )
            .expect("fresh labels");
        }
    } else {
        // Two steering branches per handler (the paper-analog shape:
        // handlers are structural twins, only their bits differ).
        for bit in [k % 6, (k + 3) % 6] {
            b.shr(STEER, W, bit as i64);
            b.and(STEER, STEER, 1);
            structured::if_else(
                b,
                Cond::Eq,
                STEER,
                1,
                |b| b.addi(ACC, ACC, 5),
                |b| b.subi(ACC, ACC, 2),
            )
            .expect("fresh labels");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_input;
    use crate::spec::Segment;

    #[test]
    fn builds_and_runs_all_opcodes() {
        let built = build(
            "interp",
            InterpShape {
                opcodes: 12,
                handler_ops: 2,
                distinct_handlers: false,
            },
        )
        .unwrap();
        // Uniform mix over 12 opcodes.
        let seg = Segment::new(1.0, &[0.7, 0.3], (2, 9), (1, 4)).with_mix(vec![1.0; 12]);
        let input = generate_input(&[seg], 500, 3);
        let out = tpdbt_vm::run_collect(&built.program, &input).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn opcode_mix_shifts_dynamic_profile() {
        let built = build(
            "interp",
            InterpShape {
                opcodes: 8,
                handler_ops: 1,
                distinct_handlers: false,
            },
        )
        .unwrap();
        let loopy = Segment::new(1.0, &[0.5], (100, 200), (1, 4))
            .with_mix(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]); // handler 0 loops
        let flat = Segment::new(1.0, &[0.5], (100, 200), (1, 4))
            .with_mix(vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]); // handler 1 does not
        let run = |seg: Segment| {
            let input = generate_input(&[seg], 200, 3);
            let mut i = tpdbt_vm::Interpreter::new(&built.program, &input);
            i.run().unwrap().instructions
        };
        assert!(run(loopy) > run(flat) * 5);
    }

    #[test]
    #[should_panic(expected = "opcodes out of range")]
    fn too_many_opcodes_rejected() {
        let _ = build(
            "t",
            InterpShape {
                opcodes: 17,
                handler_ops: 0,
                distinct_handlers: false,
            },
        );
    }
}
