//! Guest-program templates and input-stream generation.

mod input;
pub mod interp;
pub mod loopnest;
pub mod search;

pub use input::generate_input;
