//! Input-stream generation from segment specifications.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{fields, Segment, MAX_BRANCHES};

fn sample_mix(mix: &[f64], rng: &mut StdRng) -> i64 {
    if mix.is_empty() {
        return rng.gen_range(0..16);
    }
    let total: f64 = mix.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in mix.iter().enumerate() {
        if x < *w {
            return i as i64;
        }
        x -= w;
    }
    (mix.len() - 1) as i64
}

/// Generates `records` input words following the segment schedule.
///
/// Segment boundaries are record-index fractions; each record samples
/// its steering bits, trip counts, and selector from its segment's
/// distributions. Generation is fully determined by `seed`.
///
/// # Panics
///
/// Panics if `segments` is empty or a trip range is outside the packed
/// field capacity (trip1 in `1..=256`, trip2 in `1..=64`).
#[must_use]
pub fn generate_input(segments: &[Segment], records: usize, seed: u64) -> Vec<i64> {
    assert!(!segments.is_empty(), "at least one segment required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(records);
    // Precompute segment boundaries as record indices.
    let mut boundaries = Vec::with_capacity(segments.len());
    let mut acc = 0.0;
    for s in segments {
        acc += s.frac;
        boundaries.push(((acc * records as f64) as usize).min(records));
    }
    // The last segment absorbs rounding.
    *boundaries.last_mut().expect("non-empty") = records;

    let mut seg_idx = 0;
    for i in 0..records {
        while i >= boundaries[seg_idx] && seg_idx + 1 < segments.len() {
            seg_idx += 1;
        }
        let seg = &segments[seg_idx];
        let mut bits = 0u8;
        for (b, bias) in seg.biases.iter().enumerate().take(MAX_BRANCHES) {
            if rng.gen_bool(bias.clamp(0.0, 1.0)) {
                bits |= 1 << b;
            }
        }
        let trip1 = rng.gen_range(seg.trip1.0..=seg.trip1.1);
        let trip2 = rng.gen_range(seg.trip2.0..=seg.trip2.1);
        let sel = sample_mix(&seg.mix, &mut rng);
        out.push(fields::pack(bits, trip1, trip2, sel));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(frac: f64, bias0: f64, trips: (i64, i64)) -> Segment {
        Segment::new(frac, &[bias0], trips, (1, 4))
    }

    #[test]
    fn deterministic_for_same_seed() {
        let s = [seg(1.0, 0.7, (2, 9))];
        assert_eq!(generate_input(&s, 500, 42), generate_input(&s, 500, 42));
        assert_ne!(generate_input(&s, 500, 42), generate_input(&s, 500, 43));
    }

    #[test]
    fn bias_is_respected() {
        let s = [seg(1.0, 0.9, (2, 9))];
        let words = generate_input(&s, 20_000, 7);
        let ones = words
            .iter()
            .filter(|&&w| crate::spec::fields::steer(w, 0))
            .count();
        let rate = ones as f64 / words.len() as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn trips_stay_in_range() {
        let s = [seg(1.0, 0.5, (60, 250))];
        for w in generate_input(&s, 2000, 3) {
            let t = crate::spec::fields::trip1(w);
            assert!((60..=250).contains(&t), "trip {t}");
        }
    }

    #[test]
    fn segments_switch_at_boundaries() {
        let s = [seg(0.5, 0.0, (2, 2)), seg(0.5, 1.0, (9, 9))];
        let words = generate_input(&s, 1000, 1);
        // First half: bit never set, trip 2; second half: always set,
        // trip 9.
        assert!(words[..500]
            .iter()
            .all(|&w| !crate::spec::fields::steer(w, 0)));
        assert!(words[500..]
            .iter()
            .all(|&w| crate::spec::fields::steer(w, 0)));
        assert_eq!(crate::spec::fields::trip1(words[0]), 2);
        assert_eq!(crate::spec::fields::trip1(words[999]), 9);
    }

    #[test]
    fn mix_weights_skew_selectors() {
        let mut seg = seg(1.0, 0.5, (2, 4));
        seg.mix = vec![0.0, 0.0, 1.0]; // always arm 2
        let words = generate_input(&[seg], 200, 9);
        assert!(words.iter().all(|&w| crate::spec::fields::selector(w) == 2));
    }

    #[test]
    fn all_records_non_negative() {
        let s = [seg(1.0, 0.5, (1, 256))];
        assert!(generate_input(&s, 5000, 11).iter().all(|&w| w >= 0));
    }
}
