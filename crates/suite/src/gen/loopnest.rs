//! The loop-nest processor template: data-dependent inner loops plus
//! steering branches — the shape of compressors, solvers, annealers,
//! and stencil kernels.

use tpdbt_isa::{structured, BuiltProgram, Cond, FReg, IsaError, ProgramBuilder, Reg};

/// Structural knobs for a loop-nest program. Different benchmarks get
/// structurally different CFGs, not just different inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopNestShape {
    /// Float body (FP suite) or integer body (INT suite).
    pub fp: bool,
    /// Number of steering branches (1..=6), biased per input segment.
    pub branches: usize,
    /// One or two data-dependent inner loops.
    pub nests: usize,
    /// Jump-table arms after the branches (0 = no switch).
    pub switch_arms: usize,
    /// Whether each record calls a helper function.
    pub helper: bool,
    /// Extra arithmetic ops in each inner-loop body.
    pub body_ops: usize,
    /// Steering branches *inside* the first inner loop (0..=2, using
    /// bias slots 4 and 5). These branches execute once per iteration,
    /// so their profile weight rivals the loop latch — the lever for
    /// benchmarks whose dominant branches drift (wupwise, ammp).
    pub loop_branches: usize,
}

// Register conventions for this template.
const W: Reg = Reg::new(0); // current record
const TRIP1: Reg = Reg::new(1);
const STEER: Reg = Reg::new(2);
const ACC: Reg = Reg::new(3);
const SEL: Reg = Reg::new(4);
const TRIP2: Reg = Reg::new(5);
const SCRATCH: Reg = Reg::new(9);
const IDX: Reg = Reg::new(7);

/// Builds the guest program for `shape`.
///
/// # Errors
///
/// Returns [`IsaError`] only on internal template bugs (surfaced so
/// generator tests catch them).
///
/// # Panics
///
/// Panics if `shape.branches` is 0 or exceeds 6, or `shape.nests` is
/// not 1 or 2.
pub fn build(name: &str, shape: LoopNestShape) -> Result<BuiltProgram, IsaError> {
    assert!((1..=6).contains(&shape.branches), "branches out of range");
    assert!((1..=2).contains(&shape.nests), "nests out of range");
    assert!(shape.loop_branches <= 2, "at most two in-loop branches");
    let mut b = ProgramBuilder::named(name);
    b.reserve_mem(64);
    b.preload_fmem(0, (0..32).map(|i| 1.0 + f64::from(i) * 0.25).collect());

    let outer = b.fresh_label("outer");
    let end = b.fresh_label("end");

    b.movi(ACC, 0);
    b.movi(IDX, 0);
    if shape.fp {
        b.fmovi(FReg::new(3), 0.0);
        b.fmovi(FReg::new(2), 1.000_001);
    }
    b.bind(outer)?;
    b.input(W);
    b.br_imm(Cond::Lt, W, 0, end);

    // Inner loop 1: trip count from the record (bits 8..16).
    b.shr(TRIP1, W, 8);
    b.and(TRIP1, TRIP1, 0xFF);
    b.addi(TRIP1, TRIP1, 1);
    emit_inner_loop(&mut b, shape, TRIP1)?;

    if shape.nests == 2 {
        b.shr(TRIP2, W, 16);
        b.and(TRIP2, TRIP2, 0x3F);
        b.addi(TRIP2, TRIP2, 1);
        emit_inner_loop(&mut b, shape, TRIP2)?;
    }

    // Steering branches: one diamond per configured branch, condition
    // bit i of the record.
    for i in 0..shape.branches {
        b.shr(STEER, W, i as i64);
        b.and(STEER, STEER, 1);
        let fp = shape.fp;
        structured::if_else(
            &mut b,
            Cond::Eq,
            STEER,
            1,
            |b| {
                b.addi(ACC, ACC, 3);
                if fp {
                    b.fadd(FReg::new(3), FReg::new(3), FReg::new(2));
                } else {
                    b.xor(SCRATCH, ACC, 0x5A);
                }
            },
            |b| {
                b.addi(ACC, ACC, 1);
                if fp {
                    b.fmul(FReg::new(3), FReg::new(3), FReg::new(2));
                } else {
                    b.shr(SCRATCH, ACC, 1);
                }
            },
        )?;
    }

    // Dispatch switch on the selector field.
    if shape.switch_arms > 0 {
        b.shr(SEL, W, 24);
        b.and(SEL, SEL, 0xF);
        let arms: Vec<structured::Arm> = (0..shape.switch_arms)
            .map(|k| {
                let k = k as i64;
                Box::new(move |b: &mut ProgramBuilder| {
                    b.addi(ACC, ACC, k + 1);
                    b.muli(SCRATCH, ACC, k + 3);
                }) as structured::Arm
            })
            .collect();
        structured::switch(&mut b, SEL, arms)?;
    }

    let helper_label = if shape.helper {
        let l = b.fresh_label("helper");
        b.call(l);
        Some(l)
    } else {
        None
    };

    b.jmp(outer);

    b.bind(end)?;
    if shape.fp {
        b.ftoi(SCRATCH, FReg::new(3));
        b.out(SCRATCH);
    }
    b.out(ACC);
    b.halt();

    if let Some(l) = helper_label {
        b.bind(l)?;
        b.add(ACC, ACC, W);
        b.and(ACC, ACC, 0xFFFF_FFFF);
        b.ret();
    }

    b.build_with_data()
}

/// Emits a bottom-test inner loop with `counter` iterations and the
/// shape's body.
fn emit_inner_loop(
    b: &mut ProgramBuilder,
    shape: LoopNestShape,
    counter: Reg,
) -> Result<(), IsaError> {
    let head = b.fresh_label("inner");
    b.bind(head)?;
    if shape.fp {
        b.and(SCRATCH, counter, 31);
        b.fload(FReg::new(0), SCRATCH, 0);
        b.fmul(FReg::new(1), FReg::new(0), FReg::new(0));
        b.fadd(FReg::new(3), FReg::new(3), FReg::new(1));
        for i in 0..shape.body_ops {
            let dst = FReg::new((i % 2) as u8);
            b.fadd(dst, dst, FReg::new(1));
        }
    } else {
        b.add(ACC, ACC, W);
        b.xor(SCRATCH, ACC, counter);
        for i in 0..shape.body_ops {
            if i % 2 == 0 {
                b.addi(ACC, ACC, 1);
            } else {
                b.shr(SCRATCH, SCRATCH, 1);
            }
        }
    }
    for k in 0..shape.loop_branches {
        let bit = 4 + k as i64; // bias slots 4 and 5
        b.shr(STEER, W, bit);
        b.and(STEER, STEER, 1);
        let fp = shape.fp;
        structured::if_else(
            b,
            Cond::Eq,
            STEER,
            1,
            move |b| {
                if fp {
                    b.fadd(FReg::new(3), FReg::new(3), FReg::new(0));
                } else {
                    b.addi(ACC, ACC, 2);
                }
            },
            move |b| {
                if fp {
                    b.fmul(FReg::new(0), FReg::new(0), FReg::new(2));
                } else {
                    b.xor(SCRATCH, SCRATCH, 3);
                }
            },
        )?;
    }
    b.subi(counter, counter, 1);
    b.br_imm(Cond::Gt, counter, 0, head);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_input;
    use crate::spec::Segment;

    fn shape() -> LoopNestShape {
        LoopNestShape {
            fp: false,
            branches: 3,
            nests: 2,
            switch_arms: 8,
            helper: true,
            body_ops: 2,
            loop_branches: 1,
        }
    }

    #[test]
    fn program_builds_and_runs() {
        let built = build("t", shape()).unwrap();
        let input = generate_input(
            &[Segment::new(1.0, &[0.8, 0.2, 0.5], (2, 9), (1, 4))],
            200,
            5,
        );
        let out = tpdbt_vm::run_collect(&built.program, &input).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fp_variant_builds_and_runs() {
        let s = LoopNestShape {
            fp: true,
            branches: 2,
            nests: 1,
            switch_arms: 0,
            helper: false,
            body_ops: 3,
            loop_branches: 2,
        };
        let built = build("fp", s).unwrap();
        let input = generate_input(&[Segment::new(1.0, &[0.95, 0.9], (60, 120), (1, 4))], 50, 5);
        let out = tpdbt_vm::run_collect(&built.program, &input).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn deterministic_output() {
        let built = build("t", shape()).unwrap();
        let input = generate_input(&[Segment::new(1.0, &[0.5; 3], (2, 9), (1, 4))], 100, 1);
        let a = tpdbt_vm::run_collect(&built.program, &input).unwrap();
        let b = tpdbt_vm::run_collect(&built.program, &input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn instruction_count_scales_with_trip_counts() {
        let built = build(
            "t",
            LoopNestShape {
                nests: 1,
                ..shape()
            },
        )
        .unwrap();
        let short = generate_input(&[Segment::new(1.0, &[0.5; 3], (2, 2), (1, 1))], 100, 1);
        let long = generate_input(&[Segment::new(1.0, &[0.5; 3], (200, 200), (1, 1))], 100, 1);
        let run = |input: &[i64]| {
            let mut i = tpdbt_vm::Interpreter::new(&built.program, input);
            i.run().unwrap().instructions
        };
        assert!(run(&long) > run(&short) * 20);
    }

    #[test]
    #[should_panic(expected = "branches out of range")]
    fn zero_branches_rejected() {
        let _ = build(
            "t",
            LoopNestShape {
                branches: 0,
                ..shape()
            },
        );
    }
}
