//! Workload container and sizing.

use tpdbt_isa::BuiltProgram;

use crate::spec::BenchClass;

/// Workload size. The paper runs SPEC reference inputs to completion on
/// hardware; our scales trade fidelity for wall-clock time on the
/// simulated translator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~100× smaller than [`Scale::Paper`] — unit/integration tests.
    Tiny,
    /// ~10× smaller than [`Scale::Paper`] — criterion benches and quick
    /// experiment runs.
    Small,
    /// Full experiment scale: hot blocks reach millions of visits so the
    /// paper's entire threshold ladder (100 … 4M) is meaningful.
    Paper,
}

impl Scale {
    /// Divisor applied to a benchmark's base (paper-scale) record count.
    #[must_use]
    pub fn divisor(self) -> usize {
        match self {
            Scale::Tiny => 100,
            Scale::Small => 10,
            Scale::Paper => 1,
        }
    }

    /// Scales a base record count, keeping at least a handful of
    /// records.
    #[must_use]
    pub fn records(self, base: usize) -> usize {
        (base / self.divisor()).max(32)
    }
}

/// Which input to generate — the paper collects `INIP(T)` and `AVEP`
/// with the reference input and `INIP(train)` with the training input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// The reference input.
    Ref,
    /// The training input (shorter; per-benchmark distribution changes
    /// encode how representative SPEC training inputs were).
    Train,
}

/// A runnable benchmark: guest binary plus input stream.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (SPEC2000 analog, e.g. `"mcf"`).
    pub name: &'static str,
    /// INT or FP suite membership.
    pub class: BenchClass,
    /// The guest binary with preloaded data sections.
    pub binary: BuiltProgram,
    /// The input word stream.
    pub input: Vec<i64>,
    /// Which input this is.
    pub kind: InputKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_divisors_are_ordered() {
        assert!(Scale::Tiny.divisor() > Scale::Small.divisor());
        assert!(Scale::Small.divisor() > Scale::Paper.divisor());
        assert_eq!(Scale::Paper.divisor(), 1);
    }

    #[test]
    fn records_have_a_floor() {
        assert_eq!(Scale::Tiny.records(100), 32);
        assert_eq!(Scale::Paper.records(100), 100);
        assert_eq!(Scale::Small.records(100_000), 10_000);
    }
}
