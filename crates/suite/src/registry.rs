//! The benchmark registry: 26 SPEC CPU2000 analogs with per-benchmark
//! behaviour specifications.
//!
//! Each entry's `notes` field cites the paper observation its ref/train
//! segment schedule encodes. Magnitudes are approximate by design — the
//! reproduction targets the paper's *shapes* (who is predictable, when
//! mismatch drops, where phases bite), not its absolute percentages.

use crate::error::SuiteError;
use crate::gen::{generate_input, interp, loopnest, search};
use crate::spec::{BenchClass, Segment};
use crate::workload::{InputKind, Scale, Workload};

/// Program template selector plus structural knobs.
#[derive(Clone, Debug)]
enum Template {
    LoopNest(loopnest::LoopNestShape),
    Interp(interp::InterpShape),
    Search(search::SearchShape),
}

/// A registry entry.
struct Bench {
    name: &'static str,
    class: BenchClass,
    template: Template,
    /// Base (paper-scale) record count for the ref input; train uses
    /// 70% of the scaled count.
    base_records: usize,
    ref_segments: fn() -> Vec<Segment>,
    train_segments: fn() -> Vec<Segment>,
    /// Which paper observation this spec encodes.
    #[allow(dead_code)]
    notes: &'static str,
}

fn ln(
    fp: bool,
    branches: usize,
    nests: usize,
    switch_arms: usize,
    helper: bool,
    body_ops: usize,
    loop_branches: usize,
) -> Template {
    Template::LoopNest(loopnest::LoopNestShape {
        fp,
        branches,
        nests,
        switch_arms,
        helper,
        body_ops,
        loop_branches,
    })
}

#[rustfmt::skip]
fn benches() -> Vec<Bench> {
    vec![
        // ------------------------------ INT ------------------------------
        Bench {
            name: "gzip", class: BenchClass::Int,
            template: ln(false, 4, 1, 0, true, 2, 1),
            base_records: 200_000,
            // Warm-up whose behaviour differs ends after ~1k hot-block
            // visits (Fig 11: mismatch >40% below T=1k, ~22% above);
            // a late drift keeps a persistent residual mismatch.
            ref_segments: || vec![
                Segment::new(0.0006, &[0.25, 0.85, 0.30, 0.70, 0.25], (2, 16), (1, 4)),
                Segment::new(0.5494, &[0.82, 0.25, 0.72, 0.45, 0.78], (2, 16), (1, 4)),
                Segment::new(0.45,   &[0.50, 0.25, 0.50, 0.45, 0.78], (2, 16), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.78, 0.30, 0.68, 0.50, 0.72], (2, 16), (1, 4)),
            ],
            notes: "Fig 11: high mismatch until T=1k (warm-up), sharp drop, ~22% persistent",
        },
        Bench {
            name: "vpr", class: BenchClass::Int,
            template: ln(false, 4, 2, 0, false, 2, 0),
            base_records: 55_000,
            // Annealing: accept-rate decays; trip counts grow phase by
            // phase (Fig 16: LP classification wrong until T=80k).
            ref_segments: || vec![
                Segment::new(0.01, &[0.55, 0.80, 0.40, 0.60], (3, 8),   (2, 6)),
                Segment::new(0.03, &[0.35, 0.80, 0.45, 0.60], (12, 40), (8, 24)),
                Segment::new(0.96, &[0.12, 0.82, 0.50, 0.60], (100, 250), (30, 60)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.40, 0.80, 0.45, 0.60], (60, 160), (8, 24)),
            ],
            notes: "Fig 16: trip-count classes wrong until 80k; BP drift from annealing",
        },
        Bench {
            name: "gcc", class: BenchClass::Int,
            template: ln(false, 6, 2, 16, true, 1, 0),
            base_records: 90_000,
            // Fig 16 (cc1): loop classification wrong >50% until T=80k —
            // trip counts grow late in the run.
            ref_segments: || vec![
                Segment::new(0.10, &[0.60, 0.45, 0.75, 0.30, 0.55, 0.65], (2, 8),  (2, 6)),
                Segment::new(0.90, &[0.52, 0.50, 0.68, 0.35, 0.60, 0.60], (30, 90), (10, 40)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.65, 0.40, 0.78, 0.28, 0.50, 0.70], (2, 8), (2, 6)),
            ],
            notes: "Fig 16: cc1 loop classes wrong until 80k",
        },
        Bench {
            name: "mcf", class: BenchClass::Int,
            template: ln(false, 3, 2, 0, false, 2, 1),
            base_records: 34_000,
            // Phase changes (Fig 9: 5k..10k and 160k..4M) and trip-count
            // inversion (Fig 16 + §4.3: initially-high-trip loops turn
            // low and vice versa).
            ref_segments: || vec![
                Segment::new(0.0011, &[0.90, 0.20, 0.60, 0.50, 0.85], (100, 250), (2, 3)),
                Segment::new(0.35,   &[0.45, 0.60, 0.35, 0.50, 0.10], (2, 3),     (50, 64)),
                Segment::new(0.6489, &[0.75, 0.35, 0.55, 0.50, 0.80], (2, 4),     (60, 64)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.70, 0.40, 0.50, 0.50, 0.57], (2, 4), (60, 64)),
            ],
            notes: "Fig 9/11/16: phase changes; worst INT predictability; trip inversion",
        },
        Bench {
            name: "crafty", class: BenchClass::Int,
            template: Template::Search(search::SearchShape { eval_ops: 3 }),
            base_records: 34_000,
            // Slow drift in evaluation branches: ~18% persistent
            // mismatch (Fig 11).
            ref_segments: || vec![
                Segment::new(0.5, &[0.68, 0.55, 0.72, 0.60, 0.50, 0.65], (2, 4), (5, 9)),
                Segment::new(0.5, &[0.55, 0.62, 0.60, 0.52, 0.58, 0.55], (2, 4), (5, 9)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.62, 0.58, 0.66, 0.56, 0.54, 0.60], (2, 4), (5, 9)),
            ],
            notes: "Fig 11: ~18% mismatch for INIP(T)",
        },
        Bench {
            name: "parser", class: BenchClass::Int,
            template: ln(false, 5, 1, 8, false, 1, 0),
            base_records: 170_000,
            // Early segments off, converging late: mismatch declines as
            // T grows (one of Fig 11's non-flat lines).
            ref_segments: || vec![
                Segment::new(0.05, &[0.30, 0.75, 0.50, 0.60, 0.40], (2, 12), (1, 4)),
                Segment::new(0.15, &[0.45, 0.70, 0.55, 0.55, 0.45], (2, 12), (1, 4)),
                Segment::new(0.80, &[0.62, 0.66, 0.60, 0.50, 0.52], (2, 12), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.60, 0.68, 0.58, 0.52, 0.50], (2, 12), (1, 4)),
            ],
            notes: "Fig 11: accuracy improves visibly with larger T",
        },
        Bench {
            name: "eon", class: BenchClass::Int,
            template: Template::Search(search::SearchShape { eval_ops: 2 }),
            base_records: 30_000,
            // Stable from the start; the training input differs, so the
            // initial prediction beats train (Fig 9).
            ref_segments: || vec![
                Segment::new(1.0, &[0.70, 0.65, 0.60, 0.68, 0.62, 0.66], (2, 4), (5, 8)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.50, 0.50, 0.50, 0.55, 0.50, 0.50], (2, 4), (5, 8)),
            ],
            notes: "Fig 9: initial prediction more accurate than training input",
        },
        Bench {
            name: "perlbmk", class: BenchClass::Int,
            template: Template::Interp(interp::InterpShape { opcodes: 16, handler_ops: 2, distinct_handlers: false }),
            base_records: 380_000,
            // Ref opcode mix and branch biases are stable → superb
            // initial prediction; the train input exercises a wildly
            // different script → ~50% train mismatch (Fig 11) and the
            // paper's most dramatic performance win (Fig 17).
            ref_segments: || vec![
                Segment::new(1.0, &[0.80, 0.30, 0.72, 0.25, 0.60, 0.75], (2, 4), (1, 4))
                    .with_mix(vec![30.0, 1.0, 10.0, 1.0, 8.0, 1.0, 6.0, 1.0, 4.0, 1.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.30, 0.80, 0.20, 0.75, 0.45, 0.35], (2, 4), (1, 4))
                    .with_mix(vec![1.0, 20.0, 1.0, 15.0, 1.0, 10.0, 1.0, 8.0, 1.0, 4.0, 1.0, 2.0, 1.0, 1.0, 1.0, 1.0]),
            ],
            notes: "Fig 11: train mismatch ~50%; Fig 17: biggest win from accurate initial profile",
        },
        Bench {
            name: "gap", class: BenchClass::Int,
            template: Template::Interp(interp::InterpShape { opcodes: 12, handler_ops: 1, distinct_handlers: false }),
            base_records: 340_000,
            // Slow mix/bias drift: accuracy improves with larger T
            // (Fig 11's gap line).
            ref_segments: || vec![
                Segment::new(0.30, &[0.70, 0.40, 0.60, 0.45, 0.55, 0.65], (2, 4), (1, 4))
                    .with_mix(vec![12.0, 8.0, 6.0, 1.0, 1.0, 1.0, 4.0, 1.0, 1.0, 2.0, 1.0, 1.0]),
                Segment::new(0.70, &[0.58, 0.48, 0.52, 0.50, 0.60, 0.55], (2, 4), (1, 4))
                    .with_mix(vec![4.0, 2.0, 10.0, 6.0, 1.0, 1.0, 1.0, 5.0, 1.0, 1.0, 2.0, 1.0]),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.62, 0.46, 0.55, 0.48, 0.58, 0.58], (2, 4), (1, 4))
                    .with_mix(vec![6.0, 4.0, 8.0, 4.0, 1.0, 1.0, 2.0, 3.0, 1.0, 1.0, 1.5, 1.0]),
            ],
            notes: "Fig 11: one of the few benchmarks where larger T clearly helps",
        },
        Bench {
            name: "vortex", class: BenchClass::Int,
            template: Template::Search(search::SearchShape { eval_ops: 4 }),
            base_records: 30_000,
            ref_segments: || vec![
                Segment::new(1.0, &[0.75, 0.70, 0.66, 0.72, 0.68, 0.70], (2, 4), (4, 8)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.72, 0.68, 0.64, 0.70, 0.66, 0.68], (2, 4), (4, 8)),
            ],
            notes: "Fig 11: predictable; INIP(T) matches AVEP well",
        },
        Bench {
            name: "bzip2", class: BenchClass::Int,
            template: ln(false, 3, 1, 0, false, 3, 0),
            base_records: 220_000,
            // Stable ref behaviour → initial prediction beats the train
            // input (Fig 9).
            ref_segments: || vec![
                Segment::new(1.0, &[0.85, 0.20, 0.65], (2, 16), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.68, 0.35, 0.55], (2, 16), (1, 4)),
            ],
            notes: "Fig 9: initial prediction more accurate than train",
        },
        Bench {
            name: "twolf", class: BenchClass::Int,
            template: ln(false, 5, 2, 0, true, 2, 0),
            base_records: 60_000,
            ref_segments: || vec![
                Segment::new(0.5, &[0.75, 0.40, 0.60, 0.55, 0.70], (8, 30), (2, 8)),
                Segment::new(0.5, &[0.68, 0.45, 0.62, 0.50, 0.66], (8, 30), (2, 8)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.55, 0.50, 0.50, 0.60, 0.55], (8, 30), (2, 8)),
            ],
            notes: "Fig 9: initial prediction more accurate than train",
        },
        // ------------------------------ FP -------------------------------
        Bench {
            name: "wupwise", class: BenchClass::Fp,
            template: ln(true, 3, 2, 0, false, 3, 2),
            base_records: 17_000,
            // A dominant in-loop branch flips bias 30% in: INIP(T)
            // mispredicts (~20%) until T reaches ~1M visits (Fig 12).
            ref_segments: || vec![
                Segment::new(0.30, &[0.92, 0.95, 0.90, 0.50, 0.88, 0.95], (60, 200), (10, 40)),
                Segment::new(0.70, &[0.92, 0.95, 0.90, 0.50, 0.45, 0.95], (60, 200), (10, 40)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.92, 0.95, 0.90, 0.50, 0.58, 0.95], (60, 200), (10, 40)),
            ],
            notes: "Fig 12: ~20% mismatch until T=1M",
        },
        Bench {
            name: "swim", class: BenchClass::Fp,
            template: ln(true, 2, 1, 0, false, 4, 0),
            base_records: 15_000,
            ref_segments: || vec![Segment::new(1.0, &[0.97, 0.93], (100, 250), (1, 4))],
            train_segments: || vec![Segment::new(1.0, &[0.96, 0.92], (100, 250), (1, 4))],
            notes: "Fig 12: trivially predictable stencil",
        },
        Bench {
            name: "mgrid", class: BenchClass::Fp,
            template: ln(true, 2, 2, 0, false, 3, 0),
            base_records: 12_000,
            ref_segments: || vec![Segment::new(1.0, &[0.95, 0.90], (60, 250), (20, 60))],
            train_segments: || vec![Segment::new(1.0, &[0.94, 0.90], (60, 250), (20, 60))],
            notes: "Fig 12: trivially predictable multigrid",
        },
        Bench {
            name: "applu", class: BenchClass::Fp,
            template: ln(true, 3, 2, 0, false, 2, 0),
            base_records: 14_000,
            ref_segments: || vec![Segment::new(1.0, &[0.96, 0.92, 0.90], (60, 200), (10, 40))],
            train_segments: || vec![Segment::new(1.0, &[0.95, 0.91, 0.90], (60, 200), (10, 40))],
            notes: "Fig 12: stable solver",
        },
        Bench {
            name: "mesa", class: BenchClass::Fp,
            template: ln(true, 4, 1, 8, false, 1, 0),
            base_records: 60_000,
            // The most control-intensive FP benchmark: moderate biases,
            // still stable.
            ref_segments: || vec![
                Segment::new(1.0, &[0.75, 0.25, 0.80, 0.30], (10, 40), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.72, 0.28, 0.78, 0.32], (10, 40), (1, 4)),
            ],
            notes: "Fig 12: predictable despite branchy rasterization",
        },
        Bench {
            name: "galgel", class: BenchClass::Fp,
            template: ln(true, 2, 2, 0, false, 2, 0),
            base_records: 45_000,
            ref_segments: || vec![Segment::new(1.0, &[0.90, 0.85], (12, 40), (4, 16))],
            train_segments: || vec![Segment::new(1.0, &[0.89, 0.86], (12, 40), (4, 16))],
            notes: "Fig 12: predictable",
        },
        Bench {
            name: "art", class: BenchClass::Fp,
            template: ln(true, 2, 1, 0, false, 2, 1),
            base_records: 50_000,
            ref_segments: || vec![
                Segment::new(1.0, &[0.65, 0.60, 0.50, 0.50, 0.72], (12, 48), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.62, 0.62, 0.50, 0.50, 0.72], (12, 48), (1, 4)),
            ],
            notes: "Fig 12: neural-net scan; mild biases, stable",
        },
        Bench {
            name: "equake", class: BenchClass::Fp,
            template: ln(true, 2, 1, 0, false, 3, 0),
            base_records: 16_000,
            ref_segments: || vec![Segment::new(1.0, &[0.78, 0.90], (60, 200), (1, 4))],
            train_segments: || vec![Segment::new(1.0, &[0.76, 0.90], (60, 200), (1, 4))],
            notes: "Fig 12: predictable sparse solver",
        },
        Bench {
            name: "facerec", class: BenchClass::Fp,
            template: ln(true, 2, 2, 0, false, 2, 0),
            base_records: 14_000,
            ref_segments: || vec![Segment::new(1.0, &[0.92, 0.88], (60, 250), (10, 30))],
            train_segments: || vec![Segment::new(1.0, &[0.91, 0.88], (60, 250), (10, 30))],
            notes: "Fig 12: predictable",
        },
        Bench {
            name: "ammp", class: BenchClass::Fp,
            template: ln(true, 2, 1, 0, false, 2, 1),
            base_records: 45_000,
            // Mild drift in the dominant in-loop branch.
            ref_segments: || vec![
                Segment::new(0.5, &[0.85, 0.80, 0.50, 0.50, 0.82], (12, 40), (1, 4)),
                Segment::new(0.5, &[0.85, 0.80, 0.50, 0.50, 0.68], (12, 40), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.83, 0.80, 0.50, 0.50, 0.74], (12, 40), (1, 4)),
            ],
            notes: "Fig 12: slightly drifting molecular dynamics",
        },
        Bench {
            name: "lucas", class: BenchClass::Fp,
            template: ln(true, 2, 1, 0, false, 3, 2),
            base_records: 15_000,
            // Ref is stable and high-trip; the TRAIN input runs a
            // different FFT size — different trip regime and a dominant
            // branch in another range (Fig 12: train mismatch ~25%).
            ref_segments: || vec![
                Segment::new(1.0, &[0.93, 0.90, 0.50, 0.50, 0.88, 0.92], (100, 250), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.93, 0.90, 0.50, 0.50, 0.55, 0.92], (12, 40), (1, 4)),
            ],
            notes: "Fig 12: training input predicts poorly (~25%)",
        },
        Bench {
            name: "fma3d", class: BenchClass::Fp,
            template: ln(true, 3, 2, 0, false, 2, 0),
            base_records: 14_000,
            ref_segments: || vec![Segment::new(1.0, &[0.94, 0.90, 0.86], (60, 160), (10, 30))],
            train_segments: || vec![Segment::new(1.0, &[0.93, 0.90, 0.87], (60, 160), (10, 30))],
            notes: "Fig 12: predictable",
        },
        Bench {
            name: "sixtrack", class: BenchClass::Fp,
            template: ln(true, 2, 1, 0, false, 4, 0),
            base_records: 12_000,
            ref_segments: || vec![Segment::new(1.0, &[0.97, 0.95], (100, 250), (1, 4))],
            train_segments: || vec![Segment::new(1.0, &[0.97, 0.94], (100, 250), (1, 4))],
            notes: "Fig 12: trivially predictable tracking loops",
        },
        Bench {
            name: "apsi", class: BenchClass::Fp,
            template: ln(true, 3, 1, 0, false, 2, 2),
            base_records: 24_000,
            // Ref stable; the train input drives the dominant branch
            // into a different range (Fig 12: train mismatch ~20%).
            ref_segments: || vec![
                Segment::new(1.0, &[0.88, 0.85, 0.90, 0.50, 0.86, 0.92], (30, 90), (1, 4)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.88, 0.85, 0.90, 0.50, 0.52, 0.92], (30, 90), (1, 4)),
            ],
            notes: "Fig 12: training input predicts poorly (~20%)",
        },
    ]
}

/// The fleet-study families (DESIGN.md §15). Deliberately *not* part
/// of the 26 paper analogs — the cardinality of the paper suite is
/// pinned by tests — these exist because their train inputs are
/// unrepresentative in ways a cross-input fleet consensus can fix, so
/// INIP(transfer) genuinely diverges from INIP(train).
#[rustfmt::skip]
fn fleet_benches() -> Vec<Bench> {
    vec![
        Bench {
            name: "fleetint", class: BenchClass::Int,
            template: Template::Interp(interp::InterpShape { opcodes: 12, handler_ops: 2, distinct_handlers: true }),
            base_records: 120_000,
            // Input-skewed interpreter: each input concentrates on a
            // different handler subset (with flipped steering biases),
            // so INIP(train) is poor and a donor profile from a
            // ref-shaped input recovers the hot handlers structurally.
            // Every handler keeps weight ≥ 4 and biases stay within
            // [0.25, 0.78] so that even at `Scale::Tiny` both inputs
            // exercise every branch arm — the profiles stay
            // edge-isomorphic, which same-binary transfer calibration
            // relies on.
            ref_segments: || vec![
                Segment::new(1.0, &[0.78, 0.25, 0.70, 0.30, 0.60, 0.75], (2, 4), (1, 4))
                    .with_mix(vec![24.0, 12.0, 8.0, 4.0, 4.0, 4.0, 6.0, 4.0, 4.0, 4.0, 4.0, 4.0]),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.25, 0.78, 0.30, 0.75, 0.40, 0.30], (2, 4), (1, 4))
                    .with_mix(vec![4.0, 4.0, 4.0, 12.0, 20.0, 8.0, 4.0, 6.0, 4.0, 4.0, 4.0, 4.0]),
            ],
            notes: "fleet: input-skewed interpreter; cross-input transfer beats the train profile",
        },
        Bench {
            name: "fleetphase", class: BenchClass::Fp,
            template: ln(true, 4, 2, 0, false, 2, 1),
            base_records: 30_000,
            // Phase-shifting workload: ref walks three behaviour phases
            // (biases flip, trip regimes change); the train input sits
            // in the first phase only, so a profile spanning the whole
            // ref run predicts far better than train does.
            ref_segments: || vec![
                Segment::new(0.25, &[0.90, 0.20, 0.80, 0.50, 0.85], (4, 10), (2, 6)),
                Segment::new(0.40, &[0.30, 0.75, 0.40, 0.50, 0.20], (60, 160), (10, 30)),
                Segment::new(0.35, &[0.70, 0.40, 0.60, 0.50, 0.75], (10, 30), (30, 60)),
            ],
            train_segments: || vec![
                Segment::new(1.0, &[0.88, 0.22, 0.78, 0.50, 0.83], (4, 10), (2, 6)),
            ],
            notes: "fleet: phase-shifting workload; train sees only phase one",
        },
    ]
}

/// Names of the fleet-study families (separate from the paper's 26).
#[must_use]
pub fn fleet_names() -> Vec<&'static str> {
    fleet_benches().iter().map(|b| b.name).collect()
}

/// Names of the 12 INT analogs, in SPEC order.
#[must_use]
pub fn int_names() -> Vec<&'static str> {
    benches()
        .iter()
        .filter(|b| b.class == BenchClass::Int)
        .map(|b| b.name)
        .collect()
}

/// Names of the 14 FP analogs.
#[must_use]
pub fn fp_names() -> Vec<&'static str> {
    benches()
        .iter()
        .filter(|b| b.class == BenchClass::Fp)
        .map(|b| b.name)
        .collect()
}

/// All 26 benchmark names (INT then FP).
#[must_use]
pub fn all_names() -> Vec<&'static str> {
    benches().iter().map(|b| b.name).collect()
}

fn name_seed(name: &str, kind: InputKind) -> u64 {
    // FNV-1a over the name, perturbed by the input kind.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    match kind {
        InputKind::Ref => h,
        InputKind::Train => h ^ 0x9E37_79B9_7F4A_7C15,
    }
}

/// Builds the named workload at the given scale and input.
///
/// # Errors
///
/// Returns [`SuiteError::UnknownBenchmark`] for an unknown name and
/// [`SuiteError::Build`] if a generator produces an invalid program
/// (a suite bug, covered by tests).
pub fn workload(name: &str, scale: Scale, kind: InputKind) -> Result<Workload, SuiteError> {
    workload_versioned(name, scale, kind, 0)
}

/// Builds binary version `version` of the named workload: a model of
/// the same program recompiled — every straight-line work knob grows by
/// `version`, shifting all block addresses and lengths while keeping
/// the control-flow *shape* identical (which is exactly what the fleet
/// fingerprint matches on), and the input stream is re-seeded so the
/// run genuinely differs. Version 0 is [`workload`] exactly.
///
/// # Errors
///
/// As [`workload`].
pub fn workload_versioned(
    name: &str,
    scale: Scale,
    kind: InputKind,
    version: u32,
) -> Result<Workload, SuiteError> {
    let mut bench = benches()
        .into_iter()
        .chain(fleet_benches())
        .find(|b| b.name == name)
        .ok_or_else(|| SuiteError::UnknownBenchmark {
            name: name.to_string(),
        })?;
    if version > 0 {
        bench.template = match bench.template {
            Template::LoopNest(mut s) => {
                s.body_ops += version as usize;
                Template::LoopNest(s)
            }
            Template::Interp(mut s) => {
                s.handler_ops += version as usize;
                Template::Interp(s)
            }
            Template::Search(mut s) => {
                s.eval_ops += version as usize;
                Template::Search(s)
            }
        };
    }
    let binary = match &bench.template {
        Template::LoopNest(shape) => loopnest::build(bench.name, *shape),
        Template::Interp(shape) => interp::build(bench.name, *shape),
        Template::Search(shape) => search::build(bench.name, *shape),
    }
    .map_err(|e| SuiteError::Build {
        name: bench.name,
        detail: e.to_string(),
    })?;
    let records = match kind {
        InputKind::Ref => scale.records(bench.base_records),
        InputKind::Train => scale.records(bench.base_records) * 7 / 10,
    };
    let segments = match kind {
        InputKind::Ref => (bench.ref_segments)(),
        InputKind::Train => (bench.train_segments)(),
    };
    // Version 0 leaves the seed untouched (the multiplier zeroes out),
    // so `workload` and `workload_versioned(.., 0)` are bit-identical.
    let seed = name_seed(bench.name, kind) ^ u64::from(version).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let input = generate_input(&segments, records, seed);
    Ok(Workload {
        name: bench.name,
        class: bench.class,
        binary,
        input,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_cardinality() {
        assert_eq!(int_names().len(), 12);
        assert_eq!(fp_names().len(), 14);
        assert_eq!(all_names().len(), 26);
    }

    #[test]
    fn names_are_unique() {
        let mut names = all_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn segment_fractions_sum_to_one() {
        for b in benches().into_iter().chain(fleet_benches()) {
            for (kind, segs) in [("ref", (b.ref_segments)()), ("train", (b.train_segments)())] {
                let total: f64 = segs.iter().map(|s| s.frac).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "{} {kind} fractions sum to {total}",
                    b.name
                );
                for s in &segs {
                    assert!((1..=256).contains(&s.trip1.0) && s.trip1.0 <= s.trip1.1);
                    assert!((1..=64).contains(&s.trip2.0) && s.trip2.0 <= s.trip2.1);
                }
            }
        }
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        assert!(matches!(
            workload("notaspec", Scale::Tiny, InputKind::Ref),
            Err(SuiteError::UnknownBenchmark { .. })
        ));
    }

    #[test]
    fn every_workload_builds_and_runs_at_tiny_scale() {
        for name in all_names() {
            for kind in [InputKind::Ref, InputKind::Train] {
                let w = workload(name, Scale::Tiny, kind).unwrap();
                let mut interp = tpdbt_vm::Interpreter::new(&w.binary.program, &w.input);
                interp.preload(&w.binary.mem_image, &w.binary.fmem_image);
                let stats = interp
                    .run()
                    .unwrap_or_else(|e| panic!("{name} {kind:?} trapped: {e}"));
                assert!(stats.instructions > 1000, "{name} {kind:?} too short");
                assert!(
                    stats.cond_branches > 100,
                    "{name} {kind:?} has too few branches"
                );
            }
        }
    }

    #[test]
    fn ref_and_train_inputs_differ() {
        let r = workload("bzip2", Scale::Tiny, InputKind::Ref).unwrap();
        let t = workload("bzip2", Scale::Tiny, InputKind::Train).unwrap();
        assert_ne!(r.input, t.input);
        assert!(t.input.len() < r.input.len(), "train runs are shorter");
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = workload("mcf", Scale::Tiny, InputKind::Ref).unwrap();
        let b = workload("mcf", Scale::Tiny, InputKind::Ref).unwrap();
        assert_eq!(a.input, b.input);
        assert_eq!(a.binary.program, b.binary.program);
    }

    #[test]
    fn fleet_families_are_separate_from_the_paper_suite() {
        let fleet = fleet_names();
        assert_eq!(fleet.len(), 2);
        for name in &fleet {
            assert!(
                !all_names().contains(name),
                "{name} must not join the 26 paper analogs"
            );
        }
    }

    #[test]
    fn fleet_workloads_build_and_run_at_tiny_scale() {
        for name in fleet_names() {
            for kind in [InputKind::Ref, InputKind::Train] {
                let w = workload(name, Scale::Tiny, kind).unwrap();
                let mut interp = tpdbt_vm::Interpreter::new(&w.binary.program, &w.input);
                interp.preload(&w.binary.mem_image, &w.binary.fmem_image);
                let stats = interp
                    .run()
                    .unwrap_or_else(|e| panic!("{name} {kind:?} trapped: {e}"));
                assert!(stats.instructions > 1000, "{name} {kind:?} too short");
                assert!(
                    stats.cond_branches > 100,
                    "{name} {kind:?} has too few branches"
                );
            }
        }
    }

    #[test]
    fn version_zero_is_the_plain_workload() {
        let plain = workload("fleetint", Scale::Tiny, InputKind::Ref).unwrap();
        let v0 = workload_versioned("fleetint", Scale::Tiny, InputKind::Ref, 0).unwrap();
        assert_eq!(plain.input, v0.input);
        assert_eq!(plain.binary.program, v0.binary.program);
    }

    #[test]
    fn versioned_binaries_differ_but_still_run() {
        for name in ["fleetint", "gzip"] {
            let v0 = workload_versioned(name, Scale::Tiny, InputKind::Ref, 0).unwrap();
            let v2 = workload_versioned(name, Scale::Tiny, InputKind::Ref, 2).unwrap();
            assert_ne!(v0.binary.program, v2.binary.program, "{name} v2 unchanged");
            assert_ne!(v0.input, v2.input, "{name} v2 input unchanged");
            let mut interp = tpdbt_vm::Interpreter::new(&v2.binary.program, &v2.input);
            interp.preload(&v2.binary.mem_image, &v2.binary.fmem_image);
            let stats = interp
                .run()
                .unwrap_or_else(|e| panic!("{name} v2 trapped: {e}"));
            assert!(stats.instructions > 1000, "{name} v2 too short");
        }
    }

    #[test]
    fn versioned_workloads_are_deterministic() {
        let a = workload_versioned("fleetphase", Scale::Tiny, InputKind::Train, 3).unwrap();
        let b = workload_versioned("fleetphase", Scale::Tiny, InputKind::Train, 3).unwrap();
        assert_eq!(a.input, b.input);
        assert_eq!(a.binary.program, b.binary.program);
    }
}
