//! Behavioural validation of the SPEC2000 analogs: each benchmark's
//! *specified dynamics* — the properties the paper reports for the real
//! benchmark — are measured on the generated programs, independent of
//! the DBT. If a generator drifts, these tests catch it before the
//! figures do.

use std::collections::BTreeMap;

use tpdbt_suite::{all_names, fp_names, int_names, workload, BenchClass, InputKind, Scale};
use tpdbt_vm::Interpreter;

/// Runs a workload and returns per-block (use, taken) for conditional
/// branches, in halves of the input, so drift/phases are observable.
fn branch_stats(name: &str, kind: InputKind) -> (u64, u64) {
    let w = workload(name, Scale::Tiny, kind).unwrap();
    let mut interp = Interpreter::new(&w.binary.program, &w.input);
    interp.preload(&w.binary.mem_image, &w.binary.fmem_image);
    let stats = interp.run().unwrap();
    (stats.cond_branches, stats.taken_branches)
}

#[test]
fn suite_split_matches_spec2000() {
    assert_eq!(
        int_names(),
        vec![
            "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex",
            "bzip2", "twolf",
        ]
    );
    assert_eq!(fp_names().len(), 14);
    assert!(fp_names().contains(&"wupwise"));
    assert!(fp_names().contains(&"apsi"));
}

/// FP analogs are loop-intensive: their dynamic conditional branches
/// are taken far more often than INT analogs' (long loops keep taking
/// the latch).
#[test]
fn fp_is_more_biased_than_int() {
    let ratio = |names: Vec<&str>| {
        let mut cond = 0u64;
        let mut taken = 0u64;
        for n in names {
            let (c, t) = branch_stats(n, InputKind::Ref);
            cond += c;
            taken += t;
        }
        taken as f64 / cond as f64
    };
    let int_ratio = ratio(int_names());
    let fp_ratio = ratio(fp_names());
    assert!(
        fp_ratio > int_ratio + 0.05,
        "fp taken-rate {fp_ratio:.3} should exceed int {int_ratio:.3}"
    );
    assert!(
        fp_ratio > 0.85,
        "fp analogs must be loop-dominated: {fp_ratio:.3}"
    );
}

/// Perlbmk: the training input exercises a very different opcode mix —
/// the dynamic instruction mix (as a proxy) diverges far more between
/// ref and train than bzip2's does.
#[test]
fn perlbmk_train_is_unrepresentative() {
    let divergence = |name: &str| {
        let (rc, rt) = branch_stats(name, InputKind::Ref);
        let (tc, tt) = branch_stats(name, InputKind::Train);
        let r = rt as f64 / rc as f64;
        let t = tt as f64 / tc as f64;
        (r - t).abs()
    };
    let perl = divergence("perlbmk");
    let bzip = divergence("bzip2");
    assert!(
        perl > 2.0 * bzip,
        "perlbmk ref/train divergence {perl:.3} must dwarf bzip2's {bzip:.3}"
    );
}

/// Mcf: trip counts invert between the early and late run. Measured as
/// the taken-rate of the first half of records vs the second half
/// (long loops -> high taken-rate).
#[test]
fn mcf_has_phase_behavior() {
    let w = workload("mcf", Scale::Tiny, InputKind::Ref).unwrap();
    let half = w.input.len() / 2;
    let run = |input: &[i64]| {
        let mut i = Interpreter::new(&w.binary.program, input);
        i.preload(&w.binary.mem_image, &w.binary.fmem_image);
        let s = i.run().unwrap();
        s.taken_branches as f64 / s.cond_branches as f64
    };
    let first = run(&w.input[..half]);
    let whole = run(&w.input);
    assert!(
        (first - whole).abs() > 0.05,
        "mcf first-half taken-rate {first:.3} must differ from whole-run {whole:.3}"
    );
}

/// Gzip: the warm-up prefix behaves differently — running only the
/// warm-up records (the first 0.06% of the input, the paper's ~1k
/// hot-block visits) yields a noticeably different taken-rate than the
/// whole input.
#[test]
fn gzip_has_a_warmup_phase() {
    let w = workload("gzip", Scale::Small, InputKind::Ref).unwrap();
    let prefix = w.input.len() * 6 / 10_000;
    let run = |input: &[i64]| {
        let mut i = Interpreter::new(&w.binary.program, input);
        i.preload(&w.binary.mem_image, &w.binary.fmem_image);
        let s = i.run().unwrap();
        s.taken_branches as f64 / s.cond_branches as f64
    };
    let early = run(&w.input[..prefix.max(16)]);
    let whole = run(&w.input);
    assert!(
        (early - whole).abs() > 0.01,
        "gzip early taken-rate {early:.3} vs whole {whole:.3}"
    );
}

/// Stable FP analogs really are stable: first and second half
/// taken-rates agree within a point.
#[test]
fn stable_fp_analogs_do_not_drift() {
    for name in ["swim", "mgrid", "applu", "sixtrack", "facerec"] {
        let w = workload(name, Scale::Tiny, InputKind::Ref).unwrap();
        let half = w.input.len() / 2;
        let run = |input: &[i64]| {
            let mut i = Interpreter::new(&w.binary.program, input);
            i.preload(&w.binary.mem_image, &w.binary.fmem_image);
            let s = i.run().unwrap();
            s.taken_branches as f64 / s.cond_branches as f64
        };
        let first = run(&w.input[..half]);
        let second = run(&w.input[half..]);
        assert!(
            (first - second).abs() < 0.01,
            "{name}: halves differ {first:.4} vs {second:.4}"
        );
    }
}

/// Scales order total work as specified (each step ~an order of
/// magnitude).
#[test]
fn scales_order_work() {
    let instrs = |scale: Scale| {
        let w = workload("equake", scale, InputKind::Ref).unwrap();
        let mut i = Interpreter::new(&w.binary.program, &w.input);
        i.preload(&w.binary.mem_image, &w.binary.fmem_image);
        i.run().unwrap().instructions
    };
    let tiny = instrs(Scale::Tiny);
    let small = instrs(Scale::Small);
    assert!(small > tiny * 5, "small {small} vs tiny {tiny}");
}

/// Every analog's guest program is structurally distinct (no two
/// benchmarks share a binary), and block counts are sane.
#[test]
fn programs_are_distinct_and_nontrivial() {
    let mut seen: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for name in all_names() {
        let w = workload(name, Scale::Tiny, InputKind::Ref).unwrap();
        assert!(w.binary.program.len() >= 10, "{name} too small");
        seen.entry(w.binary.program.len()).or_default().push(name);
    }
    // Same length is allowed; identical programs are not.
    for (_, names) in seen {
        if names.len() > 1 {
            let progs: Vec<_> = names
                .iter()
                .map(|n| {
                    workload(n, Scale::Tiny, InputKind::Ref)
                        .unwrap()
                        .binary
                        .program
                })
                .collect();
            for i in 0..progs.len() {
                for j in i + 1..progs.len() {
                    assert_ne!(
                        progs[i], progs[j],
                        "{} and {} share a binary",
                        names[i], names[j]
                    );
                }
            }
        }
    }
}

/// INT/FP classes use the matching instruction sets: FP analogs execute
/// float operations, INT analogs' hot loops are integer.
#[test]
fn classes_use_matching_arithmetic() {
    use tpdbt_isa::Instr;
    for name in all_names() {
        let w = workload(name, Scale::Tiny, InputKind::Ref).unwrap();
        let has_fpu = w
            .binary
            .program
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Fpu { .. } | Instr::FLoad { .. }));
        match w.class {
            BenchClass::Fp => assert!(has_fpu, "{name} is FP but has no float ops"),
            BenchClass::Int => {}
        }
    }
}
