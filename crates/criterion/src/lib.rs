//! Offline stand-in for the slice of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by minimal in-repo path crates (DESIGN.md,
//! "Dependency policy"). This shim keeps `benches/` source-compatible:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, and `BatchSize`.
//! It measures wall time with `std::time::Instant` and prints a
//! median/min/max line per benchmark — no statistics engine, plots, or
//! baselines.
//!
//! Beyond the printed lines, every completed benchmark is appended to a
//! process-wide registry; when the `TPDBT_BENCH_JSON` environment
//! variable names a path, the `criterion_main!`-generated `main` writes
//! the registry there as machine-readable JSON (one object per
//! benchmark with nanosecond timings) so CI and scripts can diff runs
//! without scraping stdout.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable naming the JSON results file, if any.
pub const JSON_ENV: &str = "TPDBT_BENCH_JSON";

/// One completed benchmark in the process-wide registry.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark name (`group/name` for grouped benchmarks).
    pub name: String,
    /// Median sample, in nanoseconds.
    pub median_ns: u128,
    /// Fastest sample, in nanoseconds.
    pub min_ns: u128,
    /// Slowest sample, in nanoseconds.
    pub max_ns: u128,
    /// 50th-percentile sample, in nanoseconds (the median again, kept
    /// as an explicit field so latency records read p50/p99/p999).
    pub p50_ns: u128,
    /// 99th-percentile sample, in nanoseconds.
    pub p99_ns: u128,
    /// 99.9th-percentile sample, in nanoseconds.
    pub p999_ns: u128,
    /// Sustained operations per second, when the benchmark measures
    /// throughput (load harnesses); `None` for plain timing loops.
    pub throughput_qps: Option<f64>,
    /// Number of timed samples.
    pub samples: usize,
}

impl BenchRecord {
    /// Builds a latency record from raw nanosecond samples (sorted
    /// internally), with optional throughput.
    ///
    /// # Panics
    ///
    /// If `samples_ns` is empty.
    #[must_use]
    pub fn from_samples(
        name: impl Into<String>,
        mut samples_ns: Vec<u128>,
        throughput_qps: Option<f64>,
    ) -> BenchRecord {
        let name = name.into();
        assert!(!samples_ns.is_empty(), "no samples for {name}");
        samples_ns.sort_unstable();
        let n = samples_ns.len();
        BenchRecord {
            median_ns: samples_ns[n / 2],
            min_ns: samples_ns[0],
            max_ns: samples_ns[n - 1],
            p50_ns: percentile_ns(&samples_ns, 50.0),
            p99_ns: percentile_ns(&samples_ns, 99.0),
            p999_ns: percentile_ns(&samples_ns, 99.9),
            throughput_qps,
            samples: n,
            name,
        }
    }
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// How `iter_batched` amortizes setup (accepted for compatibility; the
/// shim always re-runs setup outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(name.as_ref(), &mut b.samples);
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.criterion.bench_function(full, f);
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Nearest-rank percentile over *sorted ascending* nanosecond samples:
/// `q` in percent (50.0, 99.0, 99.9). Small sample sets saturate to
/// the maximum, which is the honest tail estimate.
///
/// # Panics
///
/// If `sorted_ns` is empty.
#[must_use]
pub fn percentile_ns(sorted_ns: &[u128], q: f64) -> u128 {
    assert!(!sorted_ns.is_empty());
    let n = sorted_ns.len();
    // The epsilon keeps exact ranks exact: 0.999 * 1000 lands a hair
    // above 999.0 in binary and must not ceil into rank 1000.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q / 100.0) * n as f64 - 1e-9).ceil() as usize;
    sorted_ns[rank.clamp(1, n) - 1]
}

/// Appends an externally measured record (a load harness computing its
/// own percentiles) to the registry, so it rides the same
/// `TPDBT_BENCH_JSON` export as `bench_function` timings.
pub fn record(rec: BenchRecord) {
    println!(
        "{:<44} p50 {:>10}ns  p99 {:>10}ns  p999 {:>10}ns{}  (n={})",
        rec.name,
        rec.p50_ns,
        rec.p99_ns,
        rec.p999_ns,
        rec.throughput_qps
            .map(|q| format!("  {q:.0} qps"))
            .unwrap_or_default(),
        rec.samples
    );
    RESULTS.lock().unwrap().push(rec);
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<44} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        min,
        max,
        samples.len()
    );
    let sorted_ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    RESULTS.lock().unwrap().push(BenchRecord {
        name: name.to_string(),
        median_ns: median.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        p50_ns: percentile_ns(&sorted_ns, 50.0),
        p99_ns: percentile_ns(&sorted_ns, 99.0),
        p999_ns: percentile_ns(&sorted_ns, 99.9),
        throughput_qps: None,
        samples: samples.len(),
    });
}

/// Returns a snapshot of every benchmark recorded so far in this
/// process, in completion order.
#[must_use]
pub fn results() -> Vec<BenchRecord> {
    RESULTS.lock().unwrap().clone()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry as a JSON document: `{"benchmarks": [...]}`
/// with one object per benchmark carrying nanosecond timings.
#[must_use]
pub fn results_json() -> String {
    let rows: Vec<String> = results()
        .iter()
        .map(|r| {
            let throughput = r
                .throughput_qps
                .map(|q| format!(", \"throughput_qps\": {q:.3}"))
                .unwrap_or_default();
            format!(
                "  {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}{}, \"samples\": {}}}",
                json_escape(&r.name),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.p50_ns,
                r.p99_ns,
                r.p999_ns,
                throughput,
                r.samples
            )
        })
        .collect();
    format!("{{\"benchmarks\": [\n{}\n]}}\n", rows.join(",\n"))
}

/// Writes [`results_json`] to `path` unconditionally (load harnesses
/// that own their output location).
///
/// # Errors
///
/// Filesystem errors from the underlying write.
pub fn write_json_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, results_json())
}

/// Writes [`results_json`] to the path named by `TPDBT_BENCH_JSON`, if
/// set. Called by the `criterion_main!`-generated `main` after all
/// groups finish; harmless to call again. I/O failures are reported on
/// stderr rather than panicking so a read-only filesystem cannot fail a
/// bench run that otherwise succeeded.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var(JSON_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    match std::fs::write(&path, results_json()) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Returns true when the binary was invoked by `cargo test --benches`
/// (criterion proper also recognizes `--test`); benches then smoke-run
/// with one sample instead of the full budget.
#[must_use]
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Declares a group of benchmark functions, with optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            if $crate::test_mode() {
                criterion = criterion.sample_size(1);
            }
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0;
        let mut g = c.benchmark_group("shim");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }

    #[test]
    fn reports_land_in_the_registry_and_render_as_json() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("shim/json \"quoted\"", |b| b.iter(|| 1 + 1));
        let recorded = results();
        let rec = recorded
            .iter()
            .find(|r| r.name == "shim/json \"quoted\"")
            .expect("benchmark recorded");
        assert_eq!(rec.samples, 2);
        assert!(rec.min_ns <= rec.median_ns && rec.median_ns <= rec.max_ns);
        assert!(rec.p50_ns <= rec.p99_ns && rec.p99_ns <= rec.p999_ns);
        let json = results_json();
        assert!(json.starts_with("{\"benchmarks\": ["));
        assert!(json.contains("\"name\": \"shim/json \\\"quoted\\\"\""));
        assert!(json.contains("\"median_ns\": "));
        assert!(json.contains("\"p999_ns\": "));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<u128> = (1..=1000).collect();
        assert_eq!(percentile_ns(&samples, 50.0), 500);
        assert_eq!(percentile_ns(&samples, 99.0), 990);
        assert_eq!(percentile_ns(&samples, 99.9), 999);
        // Small sets saturate to the max: the honest tail estimate.
        assert_eq!(percentile_ns(&[7], 99.9), 7);
        assert_eq!(percentile_ns(&[1, 2, 3], 99.0), 3);
    }

    #[test]
    fn external_records_carry_throughput_into_the_json() {
        let rec = BenchRecord::from_samples(
            "shim/load_test",
            vec![300, 100, 200, 400, 500],
            Some(1234.5),
        );
        assert_eq!(rec.p50_ns, 300);
        assert_eq!(rec.p999_ns, 500);
        record(rec);
        let json = results_json();
        assert!(json.contains("\"name\": \"shim/load_test\""));
        assert!(json.contains("\"throughput_qps\": 1234.500"));
    }
}
