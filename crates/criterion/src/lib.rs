//! Offline stand-in for the slice of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by minimal in-repo path crates (DESIGN.md,
//! "Dependency policy"). This shim keeps `benches/` source-compatible:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, and `BatchSize`.
//! It measures wall time with `std::time::Instant` and prints a
//! median/min/max line per benchmark — no statistics engine, plots, or
//! baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for compatibility; the
/// shim always re-runs setup outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(name.as_ref(), &mut b.samples);
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.criterion.bench_function(full, f);
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<44} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        min,
        max,
        samples.len()
    );
}

/// Returns true when the binary was invoked by `cargo test --benches`
/// (criterion proper also recognizes `--test`); benches then smoke-run
/// with one sample instead of the full budget.
#[must_use]
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Declares a group of benchmark functions, with optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            if $crate::test_mode() {
                criterion = criterion.sample_size(1);
            }
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0;
        let mut g = c.benchmark_group("shim");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
