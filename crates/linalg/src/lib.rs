//! Linear-algebra kernels for `tpdbt` profile normalization.
//!
//! The paper's offline analysis tool "uses the solver for system of
//! linear equations in the Intel's Math Kernel Library to propagate
//! block frequencies for the duplicated blocks in NAVEP". MKL is
//! proprietary, so this crate provides the substitute: a dense LU solver
//! with partial pivoting for small systems and exact tests, and a sparse
//! Gauss–Seidel/Jacobi solver for the large, diagonally-dominant Markov
//! flow systems produced by whole-program normalization.
//!
//! [`markov`] builds the `(I - Pᵀ) x = b` frequency-propagation system
//! from a probabilistic flow graph, which is the only shape the profile
//! analyzer needs.
//!
//! # Example
//!
//! ```
//! use tpdbt_linalg::DenseMatrix;
//!
//! # fn main() -> Result<(), tpdbt_linalg::LinalgError> {
//! // Solve { x + y = 3, x - y = 1 }.
//! let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]])?;
//! let x = a.solve(&[3.0, 1.0])?;
//! assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
pub mod markov;
mod sparse;

pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use markov::{FlowGraph, NodeId};
pub use sparse::{CsrMatrix, SparseBuilder};
