//! Solver errors.

use std::error::Error;
use std::fmt;

/// Errors from matrix construction and linear solves.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix rows had inconsistent lengths or zero size.
    BadShape {
        /// Explanation of the shape problem.
        detail: String,
    },
    /// Right-hand side length did not match the matrix dimension.
    DimensionMismatch {
        /// Matrix dimension.
        expected: usize,
        /// Provided vector length.
        got: usize,
    },
    /// Elimination found no usable pivot: the system is singular (or
    /// numerically indistinguishable from singular).
    Singular {
        /// Column at which elimination failed.
        column: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::BadShape { detail } => write!(f, "bad matrix shape: {detail}"),
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            LinalgError::NoConvergence { iterations, residual } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(LinalgError::Singular { column: 2 }
            .to_string()
            .contains("column 2"));
        assert!(LinalgError::DimensionMismatch {
            expected: 3,
            got: 1
        }
        .to_string()
        .contains("expected 3"));
        assert!(LinalgError::NoConvergence {
            iterations: 7,
            residual: 0.5
        }
        .to_string()
        .contains("7 iterations"));
    }
}
