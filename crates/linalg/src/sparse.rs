//! Sparse matrices (CSR) and iterative solvers.

use crate::error::LinalgError;

/// Incremental builder for a [`CsrMatrix`] from (row, col, value)
/// triplets. Duplicate coordinates are summed.
#[derive(Clone, Debug, Default)]
pub struct SparseBuilder {
    n: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl SparseBuilder {
    /// Creates a builder for an `n × n` matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        SparseBuilder {
            n,
            triplets: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n && col < self.n,
            "({row},{col}) out of range for n={}",
            self.n
        );
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Finalizes into compressed sparse row form.
    #[must_use]
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.triplets.len());
        for (r, c, v) in self.triplets {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.n + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|t| t.1).collect();
        let values = merged.iter().map(|t| t.2).collect();
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A square sparse matrix in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// The dimension `n`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of `row` as `(col, value)`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                got: x.len(),
            });
        }
        let y = (0..self.n)
            .map(|i| self.row(i).map(|(j, v)| v * x[j]).sum())
            .collect();
        Ok(y)
    }

    /// The diagonal entries, validated to be numerically non-zero.
    fn diagonal(&self) -> Result<Vec<f64>, LinalgError> {
        let mut diag = vec![0.0; self.n];
        for (i, d) in diag.iter_mut().enumerate() {
            for (j, v) in self.row(i) {
                if j == i {
                    *d += v;
                }
            }
        }
        for (i, d) in diag.iter().enumerate() {
            if d.abs() < 1e-300 {
                return Err(LinalgError::Singular { column: i });
            }
        }
        Ok(diag)
    }

    /// Solves `A·x = b` by Jacobi iteration.
    ///
    /// Converges on strictly diagonally dominant systems, more slowly
    /// than [`CsrMatrix::solve_gauss_seidel`] but with
    /// iteration-order-independent updates (useful as a cross-check and
    /// trivially parallelizable). Same tolerance contract as
    /// Gauss–Seidel.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a wrong-sized `b`,
    /// [`LinalgError::Singular`] if a diagonal entry is (numerically)
    /// zero, and [`LinalgError::NoConvergence`] if the tolerance is not
    /// reached within `max_iter` sweeps.
    pub fn solve_jacobi(
        &self,
        b: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let diag = self.diagonal()?;
        let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let mut x = vec![0.0; self.n];
        let mut next = vec![0.0; self.n];
        for sweep in 1..=max_iter {
            for i in 0..self.n {
                let mut acc = b[i];
                for (j, v) in self.row(i) {
                    if j != i {
                        acc -= v * x[j];
                    }
                }
                next[i] = acc / diag[i];
            }
            std::mem::swap(&mut x, &mut next);
            if sweep % 4 == 0 || sweep == max_iter {
                let ax = self.mul_vec(&x)?;
                let residual = ax
                    .iter()
                    .zip(b)
                    .map(|(l, r)| (l - r).abs())
                    .fold(0.0f64, f64::max);
                if residual <= tol * scale {
                    return Ok(x);
                }
                if sweep == max_iter {
                    return Err(LinalgError::NoConvergence {
                        iterations: sweep,
                        residual,
                    });
                }
            }
        }
        unreachable!("loop returns at sweep == max_iter")
    }

    /// Solves `A·x = b` by Gauss–Seidel iteration.
    ///
    /// Suited to the diagonally-dominant `(I − Pᵀ)` systems produced by
    /// Markov frequency propagation; converges linearly there. The
    /// returned solution satisfies `‖Ax − b‖∞ ≤ tol · max(1, ‖b‖∞)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a wrong-sized `b`,
    /// [`LinalgError::Singular`] if a diagonal entry is (numerically)
    /// zero, and [`LinalgError::NoConvergence`] if the tolerance is not
    /// reached within `max_iter` sweeps.
    pub fn solve_gauss_seidel(
        &self,
        b: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let diag = self.diagonal()?;
        let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let mut x = vec![0.0; self.n];
        for sweep in 1..=max_iter {
            for i in 0..self.n {
                let mut acc = b[i];
                for (j, v) in self.row(i) {
                    if j != i {
                        acc -= v * x[j];
                    }
                }
                x[i] = acc / diag[i];
            }
            // Residual check every few sweeps to amortize its cost.
            if sweep % 4 == 0 || sweep == max_iter {
                let ax = self.mul_vec(&x)?;
                let residual = ax
                    .iter()
                    .zip(b)
                    .map(|(l, r)| (l - r).abs())
                    .fold(0.0f64, f64::max);
                if residual <= tol * scale {
                    return Ok(x);
                }
                if sweep == max_iter {
                    return Err(LinalgError::NoConvergence {
                        iterations: sweep,
                        residual,
                    });
                }
            }
        }
        unreachable!("loop returns at sweep == max_iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = SparseBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 4.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn csr_structure_roundtrip() {
        let m = tridiag(4);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.nnz(), 10);
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(0, -1.0), (1, 4.0), (2, -1.0)]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let mut b = SparseBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.0);
        b.add(1, 1, 1.0);
        let m = b.build();
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 3.0)]);
    }

    #[test]
    fn empty_rows_are_allowed() {
        let mut b = SparseBuilder::new(3);
        b.add(0, 0, 1.0);
        b.add(2, 2, 1.0);
        let m = b.build();
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn gauss_seidel_matches_direct_solution() {
        let m = tridiag(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64).sin() + 2.0).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let x = m.solve_gauss_seidel(&b, 1e-12, 10_000).unwrap();
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_matches_gauss_seidel() {
        let m = tridiag(40);
        let x_true: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let gs = m.solve_gauss_seidel(&b, 1e-11, 10_000).unwrap();
        let j = m.solve_jacobi(&b, 1e-11, 50_000).unwrap();
        for (a, c) in gs.iter().zip(&j) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn jacobi_detects_singular_and_mismatch() {
        let mut b = SparseBuilder::new(2);
        b.add(0, 1, 1.0);
        b.add(1, 0, 1.0);
        let m = b.build();
        assert!(matches!(
            m.solve_jacobi(&[1.0, 1.0], 1e-10, 100),
            Err(LinalgError::Singular { .. })
        ));
        let m = tridiag(3);
        assert!(m.solve_jacobi(&[1.0], 1e-10, 10).is_err());
    }

    #[test]
    fn zero_diagonal_is_singular() {
        let mut b = SparseBuilder::new(2);
        b.add(0, 1, 1.0);
        b.add(1, 0, 1.0);
        let m = b.build();
        assert!(matches!(
            m.solve_gauss_seidel(&[1.0, 1.0], 1e-10, 100),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_convergence_is_reported() {
        // A rotation-like system where Gauss-Seidel diverges.
        let mut b = SparseBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0);
        let m = b.build();
        assert!(matches!(
            m.solve_gauss_seidel(&[1.0, 1.0], 1e-12, 32),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let m = tridiag(3);
        assert!(matches!(
            m.mul_vec(&[1.0]),
            Err(LinalgError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(m.solve_gauss_seidel(&[1.0], 1e-9, 10).is_err());
    }
}
