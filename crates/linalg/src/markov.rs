//! Markov modelling of control flow (Wagner et al., PLDI'94), as used by
//! the paper to recover block frequencies for duplicated blocks.
//!
//! A [`FlowGraph`] is a probabilistic CFG in which some nodes have
//! *known* frequencies (the non-duplicated blocks, whose AVEP counts are
//! exact) and the rest are *unknown* (the duplicated copies introduced
//! by region formation). Each node distributes its frequency to its
//! successors according to edge probabilities; solving the resulting
//! linear system yields the unknown frequencies.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::sparse::SparseBuilder;

/// Index of a node in a [`FlowGraph`].
pub type NodeId = usize;

/// Threshold below which the dense fallback solver is attempted when
/// Gauss–Seidel fails to converge.
const DENSE_FALLBACK_LIMIT: usize = 1024;

/// A probabilistic flow graph with known and unknown node frequencies.
///
/// # Example
///
/// Recovering the copy frequencies from the paper's Figure 4: blocks
/// `b1`, `b3`, `b4` are known (1000, 6000, 44000) and the three copies
/// of `b2` are unknown.
///
/// ```
/// use tpdbt_linalg::FlowGraph;
///
/// # fn main() -> Result<(), tpdbt_linalg::LinalgError> {
/// let mut g = FlowGraph::new(6);
/// let (b1, b2r1, b2r2, b2res, b3, b4) = (0, 1, 2, 3, 4, 5);
/// g.set_known(b1, 1000.0);
/// g.set_known(b3, 6000.0);
/// g.set_known(b4, 44000.0);
/// // b1 -> b2(copy in region 1) with probability 1.
/// g.add_edge(b1, b2r1, 1.0);
/// // b4 loops back to its region's copy with p=0.88... (see tests for
/// // the full example; any sub-stochastic graph works).
/// g.add_edge(b4, b2r2, 0.1);
/// g.add_edge(b3, b2res, 0.5);
/// let freq = g.solve()?;
/// assert!((freq[b2r1] - 1000.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FlowGraph {
    preds: Vec<Vec<(NodeId, f64)>>,
    known: Vec<Option<f64>>,
    external: Vec<f64>,
}

impl FlowGraph {
    /// Creates a graph with `n` nodes, all unknown, no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowGraph {
            preds: vec![Vec::new(); n],
            known: vec![None; n],
            external: vec![0.0; n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Adds a flow edge: `to` receives `prob` of `from`'s frequency.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `prob` is not in
    /// `[0, 1]`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, prob: f64) {
        assert!(
            from < self.len() && to < self.len(),
            "edge ({from},{to}) out of range"
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&prob),
            "probability {prob} outside [0,1]"
        );
        if prob > 0.0 {
            self.preds[to].push((from, prob));
        }
    }

    /// Fixes a node's frequency to a known constant.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range or `freq` is negative.
    pub fn set_known(&mut self, node: NodeId, freq: f64) {
        assert!(node < self.len(), "node {node} out of range");
        assert!(freq >= 0.0, "frequency {freq} must be non-negative");
        self.known[node] = Some(freq);
    }

    /// Adds external inflow to a node (e.g. the program entry executes
    /// once without any CFG predecessor).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn add_external(&mut self, node: NodeId, inflow: f64) {
        assert!(node < self.len(), "node {node} out of range");
        self.external[node] += inflow;
    }

    /// Solves for every node's frequency. Known nodes keep their fixed
    /// value; unknown nodes satisfy
    /// `x(u) = external(u) + Σ_pred freq(pred) · prob(pred → u)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] or
    /// [`LinalgError::NoConvergence`] when the system cannot be solved —
    /// in a well-formed profile graph this indicates a closed cycle of
    /// unknown nodes with no leakage, which region side exits rule out.
    pub fn solve(&self) -> Result<Vec<f64>, LinalgError> {
        let n = self.len();
        // Map unknown nodes to system indices.
        let unknown_index: Vec<Option<usize>> = {
            let mut next = 0usize;
            self.known
                .iter()
                .map(|k| {
                    if k.is_none() {
                        let i = next;
                        next += 1;
                        Some(i)
                    } else {
                        None
                    }
                })
                .collect()
        };
        let m = unknown_index.iter().flatten().count();
        let mut result: Vec<f64> = self.known.iter().map(|k| k.unwrap_or(0.0)).collect();
        if m == 0 {
            return Ok(result);
        }
        // Build (I - A) x = b over the unknowns.
        let mut builder = SparseBuilder::new(m);
        let mut b = vec![0.0; m];
        for node in 0..n {
            let Some(row) = unknown_index[node] else {
                continue;
            };
            builder.add(row, row, 1.0);
            b[row] += self.external[node];
            for &(pred, prob) in &self.preds[node] {
                match unknown_index[pred] {
                    Some(col) => builder.add(row, col, -prob),
                    None => {
                        b[row] += self.known[pred].expect("known nodes have values") * prob;
                    }
                }
            }
        }
        let matrix = builder.build();
        let x = match matrix.solve_gauss_seidel(&b, 1e-10, 20_000) {
            Ok(x) => x,
            Err(err) if m <= DENSE_FALLBACK_LIMIT => {
                // Cyclic structures with probabilities summing to ~1 can
                // make Gauss-Seidel slow; fall back to direct
                // elimination for small systems.
                let mut dense = DenseMatrix::zeros(m, m)?;
                for i in 0..m {
                    for (j, v) in matrix.row(i) {
                        dense.set(i, j, dense.get(i, j) + v);
                    }
                }
                dense.solve(&b).map_err(|_| err)?
            }
            Err(err) => return Err(err),
        };
        for node in 0..n {
            if let Some(i) = unknown_index[node] {
                // Frequencies cannot be negative; clamp tiny numerical
                // undershoot.
                result[node] = x[i].max(0.0);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 example: b1 (1000), b3 (6000), b4 (44000)
    /// known; three copies of b2 unknown. Edge probabilities follow the
    /// AVEP annotations in Figure 2(b)/Figure 3: b2 branches to b4 with
    /// p=0.90, exits with 0.10; b4 loops back to b2 with p=0.70 (to the
    /// inner-loop copy); b3 branches back to the outer-loop copy of b2
    /// with p=0.80 ... the exact numbers below reproduce Figure 4(b):
    /// copies get 1000, 43120, 5880 (summing to b2's AVEP 50000).
    #[test]
    fn figure4_copy_frequencies() {
        // Nodes: 0=b1(known), 1=b2_first(entry copy), 2=b2_inner,
        // 3=b2_outer, 4=b3(known), 5=b4(known).
        let mut g = FlowGraph::new(6);
        g.set_known(0, 1000.0);
        g.set_known(4, 6000.0);
        g.set_known(5, 44000.0);
        // b1 always flows into the first execution of b2.
        g.add_edge(0, 1, 1.0);
        // b4 (inner loop latch, freq 44000) loops back to the inner copy
        // of b2 with probability 0.98 (43120 = 44000 * 0.98).
        g.add_edge(5, 2, 0.98);
        // b3 (outer loop latch, freq 6000) loops back to the outer copy
        // of b2 with probability 0.98 (5880 = 6000 * 0.98).
        g.add_edge(4, 3, 0.98);
        let f = g.solve().unwrap();
        assert!((f[1] - 1000.0).abs() < 1e-6);
        assert!((f[2] - 43120.0).abs() < 1e-6);
        assert!((f[3] - 5880.0).abs() < 1e-6);
        // Known nodes keep their values.
        assert_eq!(f[0], 1000.0);
        assert_eq!(f[5], 44000.0);
    }

    #[test]
    fn chain_of_unknowns_propagates() {
        // known(100) -> u1 -(0.5)-> u2 -(0.2)-> u3
        let mut g = FlowGraph::new(4);
        g.set_known(0, 100.0);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 0.5);
        g.add_edge(2, 3, 0.2);
        let f = g.solve().unwrap();
        assert!((f[1] - 100.0).abs() < 1e-7);
        assert!((f[2] - 50.0).abs() < 1e-7);
        assert!((f[3] - 10.0).abs() < 1e-7);
    }

    #[test]
    fn cycle_with_leakage_solves() {
        // u0 <-> u1 cycle with 0.9 probability each way, fed externally.
        let mut g = FlowGraph::new(2);
        g.add_external(0, 19.0);
        g.add_edge(0, 1, 0.9);
        g.add_edge(1, 0, 0.9);
        let f = g.solve().unwrap();
        // x0 = 19 + 0.9 x1; x1 = 0.9 x0 => x0 = 19 / (1 - 0.81) = 100.
        assert!((f[0] - 100.0).abs() < 1e-6, "{f:?}");
        assert!((f[1] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn all_known_is_identity() {
        let mut g = FlowGraph::new(2);
        g.set_known(0, 5.0);
        g.set_known(1, 7.0);
        g.add_edge(0, 1, 1.0); // ignored: both known
        assert_eq!(g.solve().unwrap(), vec![5.0, 7.0]);
    }

    #[test]
    fn external_inflow_accumulates() {
        let mut g = FlowGraph::new(1);
        g.add_external(0, 1.0);
        g.add_external(0, 2.0);
        assert!((g.solve().unwrap()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn closed_cycle_without_leakage_fails() {
        // Probability-1 cycle between two unknowns: singular system.
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        g.add_external(0, 1.0);
        assert!(g.solve().is_err());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_probability_panics() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 1.5);
    }

    #[test]
    fn empty_graph() {
        let g = FlowGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.solve().unwrap(), Vec::<f64>::new());
    }
}
