//! Dense matrices and Gaussian elimination.

use crate::error::LinalgError;

/// A dense, row-major `n × n` or `n × m` matrix of `f64`.
///
/// Sized for the small systems that appear in per-region frequency
/// propagation and in tests; whole-program systems use
/// [`crate::CsrMatrix`].
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::BadShape {
                detail: format!("dimensions must be positive, got {rows}x{cols}"),
            });
        }
        Ok(DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] for an empty matrix or ragged
    /// rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::BadShape {
                detail: "empty matrix".to_string(),
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::BadShape {
                    detail: format!("row {i} has length {}, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j] = v;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        let y = self
            .data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect();
        Ok(y)
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting,
    /// followed by one step of iterative refinement.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] for a non-square matrix,
    /// [`LinalgError::DimensionMismatch`] for a wrong-sized `b`, and
    /// [`LinalgError::Singular`] when no usable pivot exists.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::BadShape {
                detail: format!(
                    "solve requires a square matrix, got {}x{}",
                    self.rows, self.cols
                ),
            });
        }
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let x = self.solve_raw(b)?;
        // One refinement step: x' = x + solve(b - A x).
        let ax = self.mul_vec(&x)?;
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let dx = self.solve_raw(&r)?;
        Ok(x.iter().zip(&dx).map(|(a, d)| a + d).collect())
    }

    fn solve_raw(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot: largest magnitude in this column at or
            // below the diagonal.
            let pivot_row = (col..n)
                .max_by(|&i, &j| {
                    a[i * n + col]
                        .abs()
                        .partial_cmp(&a[j * n + col].abs())
                        .expect("pivot magnitudes are never NaN")
                })
                .expect("non-empty pivot range");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-300 {
                return Err(LinalgError::Singular { column: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            for row in col + 1..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[row * n + col] = 0.0;
                for j in col + 1..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_close(&a.solve(&[3.0, -4.0]).unwrap(), &[3.0, -4.0], 1e-14);
    }

    #[test]
    fn solves_3x3_with_pivoting() {
        // First pivot is zero: forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, -2.0]])
            .unwrap();
        let x_true = [1.0, 2.0, -0.5];
        let b = a.mul_vec(&x_true).unwrap();
        assert_close(&a.solve(&b).unwrap(), &x_true, 1e-10);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        assert!(DenseMatrix::from_rows(&[]).is_err());
        assert!(DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(DenseMatrix::zeros(0, 3).is_err());
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0]), Err(LinalgError::BadShape { .. })));
        let sq = DenseMatrix::from_rows(&[&[1.0]]).unwrap();
        assert!(matches!(
            sq.solve(&[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3).unwrap();
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn refinement_improves_ill_conditioned_solve() {
        // A moderately ill-conditioned system still solves to good accuracy.
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-8]]).unwrap();
        let x_true = [2.0, 3.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert_close(&x, &x_true, 1e-4);
    }
}
