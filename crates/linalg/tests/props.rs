//! Property tests for the linear-algebra substrate.

use proptest::prelude::*;

use tpdbt_linalg::{DenseMatrix, FlowGraph, SparseBuilder};

/// A random diagonally-dominant square system (both solvers converge on
/// these, which is exactly the class Markov normalization produces).
fn arb_dd_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (
        prop::collection::vec(prop::collection::vec(-1.0f64..1.0, n), n),
        prop::collection::vec(-10.0f64..10.0, n),
    )
        .prop_map(move |(mut rows, x)| {
            for (i, row) in rows.iter_mut().enumerate() {
                let off: f64 = row
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, v)| v.abs())
                    .sum();
                row[i] = off + 1.0 + row[i].abs();
            }
            (rows, x)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Dense Gaussian elimination inverts `A·x` exactly enough.
    #[test]
    fn dense_solve_roundtrips((rows, x_true) in arb_dd_system(6)) {
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = DenseMatrix::from_rows(&refs).unwrap();
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    /// Gauss–Seidel agrees with dense elimination on diagonally
    /// dominant systems.
    #[test]
    fn sparse_agrees_with_dense((rows, x_true) in arb_dd_system(8)) {
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let dense = DenseMatrix::from_rows(&refs).unwrap();
        let b = dense.mul_vec(&x_true).unwrap();
        let direct = dense.solve(&b).unwrap();
        let mut sb = SparseBuilder::new(rows.len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                sb.add(i, j, v);
            }
        }
        let iterative = sb.build().solve_gauss_seidel(&b, 1e-12, 100_000).unwrap();
        for (a, c) in direct.iter().zip(&iterative) {
            prop_assert!((a - c).abs() < 1e-7, "{a} vs {c}");
        }
    }

    /// Flow conservation: in a chain graph fed by one known source,
    /// every unknown node's frequency equals inflow — and no frequency
    /// is negative.
    #[test]
    fn flowgraph_chain_conserves(
        src in 1.0f64..10_000.0,
        probs in prop::collection::vec(0.0f64..=1.0, 1..12),
    ) {
        let n = probs.len() + 1;
        let mut g = FlowGraph::new(n);
        g.set_known(0, src);
        for (i, &p) in probs.iter().enumerate() {
            g.add_edge(i, i + 1, p);
        }
        let f = g.solve().unwrap();
        let mut expect = src;
        for (i, &p) in probs.iter().enumerate() {
            expect *= p;
            prop_assert!((f[i + 1] - expect).abs() < 1e-6 * src.max(1.0));
            prop_assert!(f[i + 1] >= 0.0);
        }
    }

    /// A sub-stochastic cycle (leakage > 0) always solves, and the
    /// closed-form geometric sum matches.
    #[test]
    fn flowgraph_cycle_geometric(
        inflow in 1.0f64..1000.0,
        p in 0.0f64..0.99,
        q in 0.0f64..0.99,
    ) {
        let mut g = FlowGraph::new(2);
        g.add_external(0, inflow);
        g.add_edge(0, 1, p);
        g.add_edge(1, 0, q);
        let f = g.solve().unwrap();
        let x0 = inflow / (1.0 - p * q);
        prop_assert!((f[0] - x0).abs() < 1e-6 * x0);
        prop_assert!((f[1] - p * x0).abs() < 1e-6 * x0.max(1.0));
    }
}
