//! Deterministic fault injection for the tpdbt experiment pipeline.
//!
//! The paper's data is the product of hundreds of long guest runs per
//! threshold ladder; a production-scale sweep must *survive* individual
//! failures — a panicking worker, a flaky filesystem, a corrupt cache
//! entry — rather than discard every completed cell. This crate is the
//! harness that *proves* that property: the store, the sweep workers,
//! and the guest runner consult a shared [`FaultPlan`] at well-known
//! [`FaultSite`]s, and the plan decides — deterministically — which
//! occurrence of each site fails.
//!
//! Design points:
//!
//! * **Keyed by site + occurrence index** — `store_read:2` means "the
//!   third store read fails". Within one thread (or a `--jobs 1`
//!   sweep) occurrence order is fully deterministic; across a worker
//!   pool the *set* of fired faults per site is still exact, only the
//!   assignment to cells follows scheduling.
//! * **Seeded pseudo-random plans** — [`FaultPlan::seeded`] fires each
//!   site occurrence with a fixed per-mille probability derived from a
//!   seed via SplitMix64, so "5‰ of store reads fail" replays
//!   identically for the same seed.
//! * **Compiled out without the `fault-injection` feature** — the API
//!   is identical in both configurations, but without the feature
//!   [`FaultPlan::fire`] is a constant `false` the optimizer folds
//!   away, so every downstream injection site vanishes (the
//!   `tpdbt-dbt` `trace` pattern). [`FaultPlan::parse`] refuses plans
//!   in that configuration so `--inject` fails loudly instead of
//!   silently doing nothing.
//!
//! # Example
//!
//! ```
//! use tpdbt_faults::{FaultPlan, FaultSite};
//!
//! let plan = FaultPlan::new().inject(FaultSite::StoreRead, 1);
//! if FaultPlan::ENABLED {
//!     assert!(!plan.fire(FaultSite::StoreRead)); // occurrence 0
//!     assert!(plan.fire(FaultSite::StoreRead)); // occurrence 1
//!     assert_eq!(plan.fired(), 1);
//! } else {
//!     assert!(!plan.fire(FaultSite::StoreRead));
//!     assert_eq!(plan.fired(), 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod site;

pub use plan::{FaultPlan, PlanError};
pub use site::FaultSite;
