//! The fault plan: which occurrence of which site fails.

use std::fmt;

use crate::site::FaultSite;

/// A malformed or unsupported `--inject` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A spec token did not parse.
    BadToken {
        /// The offending token.
        token: String,
        /// What was wrong with it.
        why: String,
    },
    /// The binary was built without the `fault-injection` feature, so
    /// a non-empty plan can never fire.
    Unsupported,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadToken { token, why } => {
                write!(f, "bad fault spec token `{token}`: {why}")
            }
            PlanError::Unsupported => write!(
                f,
                "fault injection was compiled out (rebuild with the \
                 `fault-injection` feature to use --inject)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// SplitMix64: the seeded plan's per-occurrence decision function.
#[cfg(feature = "fault-injection")]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(feature = "fault-injection")]
mod imp {
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::splitmix64;
    use crate::site::FaultSite;

    /// Enabled implementation: per-site occurrence counters plus the
    /// planned (site, occurrence) set and an optional seeded rate.
    #[derive(Debug, Default)]
    pub(super) struct Imp {
        counters: [AtomicU64; FaultSite::ALL.len()],
        points: BTreeSet<(usize, u64)>,
        /// `(seed, per-mille rate)`: each occurrence additionally fires
        /// with probability `rate / 1000`, decided by hashing
        /// `(seed, site, occurrence)`.
        seeded: Option<(u64, u32)>,
        fired: AtomicU64,
    }

    impl Imp {
        pub(super) fn add_point(&mut self, site: FaultSite, occurrence: u64) {
            self.points.insert((site.index(), occurrence));
        }

        pub(super) fn set_seeded(&mut self, seed: u64, per_mille: u32) {
            self.seeded = Some((seed, per_mille.min(1000)));
        }

        pub(super) fn fire(&self, site: FaultSite) -> Option<u64> {
            let occ = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
            let planned = self.points.contains(&(site.index(), occ))
                || self.seeded.is_some_and(|(seed, rate)| {
                    let h = splitmix64(seed ^ ((site.index() as u64) << 32) ^ occ);
                    h % 1000 < u64::from(rate)
                });
            if planned {
                self.fired.fetch_add(1, Ordering::Relaxed);
                Some(occ)
            } else {
                None
            }
        }

        pub(super) fn occurrences(&self, site: FaultSite) -> u64 {
            self.counters[site.index()].load(Ordering::Relaxed)
        }

        pub(super) fn fired(&self) -> u64 {
            self.fired.load(Ordering::Relaxed)
        }

        pub(super) fn armed(&self) -> bool {
            !self.points.is_empty() || self.seeded.is_some()
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use crate::site::FaultSite;

    /// Disabled implementation: a zero-sized inert plan. Every method
    /// is a constant the optimizer folds away, so injection sites
    /// downstream compile out entirely.
    #[derive(Debug, Default)]
    pub(super) struct Imp;

    impl Imp {
        pub(super) fn add_point(&mut self, _site: FaultSite, _occurrence: u64) {}

        pub(super) fn set_seeded(&mut self, _seed: u64, _per_mille: u32) {}

        #[inline(always)]
        pub(super) fn fire(&self, _site: FaultSite) -> Option<u64> {
            None
        }

        pub(super) fn occurrences(&self, _site: FaultSite) -> u64 {
            0
        }

        pub(super) fn fired(&self) -> u64 {
            0
        }

        pub(super) fn armed(&self) -> bool {
            false
        }
    }
}

/// A deterministic injection plan shared (behind an `Arc`) by the
/// store, the sweep workers, and the guest runner.
///
/// Every consult ([`FaultPlan::fire`]) increments the site's occurrence
/// counter; the plan fires when that occurrence was explicitly planned
/// ([`FaultPlan::inject`]) or the seeded rate selects it
/// ([`FaultPlan::seeded`]). All methods take `&self` and are
/// thread-safe.
#[derive(Debug, Default)]
pub struct FaultPlan {
    imp: imp::Imp,
}

impl FaultPlan {
    /// Whether this build compiled the injection machinery in. Without
    /// it every plan is inert: [`FaultPlan::fire`] is constant `false`.
    pub const ENABLED: bool = cfg!(feature = "fault-injection");

    /// An empty plan: counts occurrences, never fires.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Plans the `occurrence`-th consult (0-based) of `site` to fail.
    /// No-op when injection is compiled out.
    #[must_use]
    pub fn inject(mut self, site: FaultSite, occurrence: u64) -> Self {
        self.imp.add_point(site, occurrence);
        self
    }

    /// Additionally fires *every* site occurrence with probability
    /// `per_mille / 1000`, decided deterministically from `seed` and
    /// the (site, occurrence) pair — the same seed replays the same
    /// faults. No-op when injection is compiled out.
    #[must_use]
    pub fn seeded(mut self, seed: u64, per_mille: u32) -> Self {
        self.imp.set_seeded(seed, per_mille);
        self
    }

    /// Parses an `--inject` spec: comma-separated `site:occurrence`
    /// tokens (e.g. `worker_panic:0,store_corrupt:2`) plus optional
    /// `seed=N` / `rate=N` (per-mille) for a seeded plan.
    ///
    /// # Errors
    ///
    /// [`PlanError::BadToken`] on a malformed token, and
    /// [`PlanError::Unsupported`] when the `fault-injection` feature is
    /// compiled out (a plan that can never fire is a silent lie).
    pub fn parse(spec: &str) -> Result<Self, PlanError> {
        if !Self::ENABLED {
            return Err(PlanError::Unsupported);
        }
        let mut plan = FaultPlan::new();
        let mut seed: Option<u64> = None;
        let mut rate: Option<u32> = None;
        for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let token = token.trim();
            let bad = |why: String| PlanError::BadToken {
                token: token.to_string(),
                why,
            };
            if let Some(v) = token.strip_prefix("seed=") {
                seed = Some(v.parse().map_err(|e| bad(format!("bad seed: {e}")))?);
            } else if let Some(v) = token.strip_prefix("rate=") {
                rate = Some(v.parse().map_err(|e| bad(format!("bad rate: {e}")))?);
            } else if let Some((site, occ)) = token.split_once(':') {
                let site: FaultSite = site.parse().map_err(bad)?;
                let occ: u64 = occ
                    .parse()
                    .map_err(|e| bad(format!("bad occurrence index: {e}")))?;
                plan = plan.inject(site, occ);
            } else {
                return Err(bad("expected site:occurrence, seed=N, or rate=N".into()));
            }
        }
        match (seed, rate) {
            (None, None) => {}
            (s, r) => plan = plan.seeded(s.unwrap_or(0), r.unwrap_or(1)),
        }
        Ok(plan)
    }

    /// Consults the plan at `site`: bumps the site's occurrence counter
    /// and reports whether this occurrence should fail.
    #[inline]
    #[must_use]
    pub fn fire(&self, site: FaultSite) -> bool {
        self.imp.fire(site).is_some()
    }

    /// Like [`FaultPlan::fire`], but also reports which occurrence
    /// index fired (for trace events).
    #[inline]
    #[must_use]
    pub fn fire_indexed(&self, site: FaultSite) -> Option<u64> {
        self.imp.fire(site)
    }

    /// Consults the plan at `site` and, if this occurrence was planned,
    /// **aborts the process** (`SIGABRT`, no destructors, no atexit
    /// handlers — the closest in-process stand-in for `kill -9`).
    ///
    /// Crash sites simulate the process dying at a precise point in a
    /// multi-step operation; the crash-restart harness then restarts
    /// the binary and checks the on-disk state. Compiled out (constant
    /// no-op) without the `fault-injection` feature, like every other
    /// site.
    #[inline]
    pub fn fire_crash(&self, site: FaultSite) {
        if let Some(occ) = self.imp.fire(site) {
            eprintln!("tpdbt-faults: injected crash at {site}:{occ} — aborting process");
            std::process::abort();
        }
    }

    /// How many times `site` has been consulted so far.
    #[must_use]
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.imp.occurrences(site)
    }

    /// Total faults fired so far, across all sites.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.imp.fired()
    }

    /// Whether any injection is configured (an inert or empty plan
    /// reports `false`).
    #[must_use]
    pub fn armed(&self) -> bool {
        self.imp.armed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_but_counts() {
        let plan = FaultPlan::new();
        assert!(!plan.armed());
        for _ in 0..5 {
            assert!(!plan.fire(FaultSite::StoreRead));
        }
        assert_eq!(plan.fired(), 0);
        if FaultPlan::ENABLED {
            assert_eq!(plan.occurrences(FaultSite::StoreRead), 5);
        }
    }

    #[cfg(feature = "fault-injection")]
    mod enabled {
        use super::*;

        #[test]
        fn fires_exactly_the_planned_occurrence() {
            let plan = FaultPlan::new()
                .inject(FaultSite::WorkerPanic, 2)
                .inject(FaultSite::StoreRead, 0);
            assert!(plan.armed());
            assert!(plan.fire(FaultSite::StoreRead), "store_read:0");
            assert!(!plan.fire(FaultSite::StoreRead));
            assert!(!plan.fire(FaultSite::WorkerPanic));
            assert!(!plan.fire(FaultSite::WorkerPanic));
            assert_eq!(plan.fire_indexed(FaultSite::WorkerPanic), Some(2));
            assert!(!plan.fire(FaultSite::WorkerPanic));
            assert_eq!(plan.fired(), 2);
        }

        #[test]
        fn fire_crash_counts_unplanned_occurrences_without_aborting() {
            // The aborting arm can only be observed from a supervisor
            // (tpdbt-crash does); here we check the non-firing path
            // still advances the occurrence counter.
            let plan = FaultPlan::new().inject(FaultSite::CrashStoreFsync, 99);
            for _ in 0..3 {
                plan.fire_crash(FaultSite::CrashStoreFsync);
            }
            assert_eq!(plan.occurrences(FaultSite::CrashStoreFsync), 3);
            assert_eq!(plan.fired(), 0);
        }

        #[test]
        fn sites_have_independent_counters() {
            let plan = FaultPlan::new().inject(FaultSite::GuestTrap, 0);
            assert!(!plan.fire(FaultSite::SlowCell));
            assert!(plan.fire(FaultSite::GuestTrap));
        }

        #[test]
        fn seeded_plans_replay_identically() {
            let observe = || {
                let plan = FaultPlan::new().seeded(42, 250);
                (0..64)
                    .map(|_| plan.fire(FaultSite::StoreRead))
                    .collect::<Vec<bool>>()
            };
            let a = observe();
            assert_eq!(a, observe(), "same seed, same faults");
            let fired = a.iter().filter(|&&f| f).count();
            assert!(fired > 0, "a 25% rate over 64 draws should fire");
            assert!(fired < 64, "and should not fire every time");
        }

        #[test]
        fn parse_builds_the_same_plan() {
            let plan = FaultPlan::parse("worker_panic:0, store_corrupt:1").unwrap();
            assert!(plan.fire(FaultSite::WorkerPanic));
            assert!(!plan.fire(FaultSite::StoreCorrupt));
            assert!(plan.fire(FaultSite::StoreCorrupt));

            let seeded = FaultPlan::parse("seed=7,rate=1000").unwrap();
            assert!(seeded.fire(FaultSite::SlowCell), "rate=1000 always fires");

            assert!(matches!(
                FaultPlan::parse("bogus:1"),
                Err(PlanError::BadToken { .. })
            ));
            assert!(matches!(
                FaultPlan::parse("worker_panic"),
                Err(PlanError::BadToken { .. })
            ));
            assert!(matches!(
                FaultPlan::parse("worker_panic:x"),
                Err(PlanError::BadToken { .. })
            ));
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    mod disabled {
        use super::*;

        #[test]
        fn parse_refuses_inert_plans() {
            assert!(matches!(
                FaultPlan::parse("worker_panic:0"),
                Err(PlanError::Unsupported)
            ));
        }

        #[test]
        fn builders_are_inert() {
            let plan = FaultPlan::new()
                .inject(FaultSite::WorkerPanic, 0)
                .seeded(1, 1000);
            assert!(!plan.armed());
            assert!(!plan.fire(FaultSite::WorkerPanic));
        }
    }
}
