//! The injection-site taxonomy: every place the pipeline consults the
//! plan before doing real work.

use std::fmt;
use std::str::FromStr;

/// A named injection point in the experiment pipeline.
///
/// Each site has its own occurrence counter inside a
/// [`FaultPlan`](crate::FaultPlan), so `store_read:2` and
/// `worker_panic:2` are independent events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// A store artifact read fails with a transient I/O error.
    StoreRead,
    /// A store artifact write fails with a transient I/O error.
    StoreWrite,
    /// The bytes returned by a store read are corrupted (simulates a
    /// bad disk sector: the on-disk file may be fine, the read is not).
    StoreCorrupt,
    /// A sweep worker panics at the start of a cell.
    WorkerPanic,
    /// The guest traps (a synthetic `VmError`) instead of running.
    GuestTrap,
    /// The guest exhausts its fuel budget instead of running.
    FuelExhaustion,
    /// The cell stalls (a bounded sleep) before running, simulating a
    /// slow or contended worker.
    SlowCell,
    /// The serve listener drops a freshly accepted connection before
    /// any frame is read (simulates a flaky network / dying peer).
    ServeListener,
    /// A serve request frame is treated as undecodable even though the
    /// bytes were fine (simulates a corrupted or hostile frame).
    ServeDecode,
    /// A serve request's artifact computation fails with a synthetic
    /// error instead of running.
    ServeCompute,
    /// The process aborts after the store wrote a temp file but before
    /// it was fsynced (the classic half-written-file crash window).
    CrashStoreTempWrite,
    /// The process aborts after the temp file is durable but before the
    /// atomic rename publishes it.
    CrashStoreFsync,
    /// The process aborts right after the rename, before the directory
    /// entry itself is synced.
    CrashStoreRename,
    /// The process aborts mid-quarantine, while moving a corrupt entry
    /// aside.
    CrashStoreQuarantine,
    /// The process aborts right after a sweep cell committed its
    /// artifact to the store.
    CrashSweepCommit,
    /// The process aborts on the serve cold path, after the computed
    /// artifact was persisted but before the hot-tier install.
    CrashServeInstall,
}

impl FaultSite {
    /// Every site, in stable declaration order (the occurrence-counter
    /// index is this position).
    pub const ALL: [FaultSite; 16] = [
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::StoreCorrupt,
        FaultSite::WorkerPanic,
        FaultSite::GuestTrap,
        FaultSite::FuelExhaustion,
        FaultSite::SlowCell,
        FaultSite::ServeListener,
        FaultSite::ServeDecode,
        FaultSite::ServeCompute,
        FaultSite::CrashStoreTempWrite,
        FaultSite::CrashStoreFsync,
        FaultSite::CrashStoreRename,
        FaultSite::CrashStoreQuarantine,
        FaultSite::CrashSweepCommit,
        FaultSite::CrashServeInstall,
    ];

    /// The crash-kind sites: each one aborts the whole process when it
    /// fires ([`FaultPlan::fire_crash`](crate::FaultPlan::fire_crash))
    /// instead of returning an error. The crash-restart harness sweeps
    /// exactly this registry.
    pub const CRASH_SITES: [FaultSite; 6] = [
        FaultSite::CrashStoreTempWrite,
        FaultSite::CrashStoreFsync,
        FaultSite::CrashStoreRename,
        FaultSite::CrashStoreQuarantine,
        FaultSite::CrashSweepCommit,
        FaultSite::CrashServeInstall,
    ];

    /// Whether this site is a crash kind (process-abort on fire).
    #[must_use]
    pub fn is_crash(self) -> bool {
        Self::CRASH_SITES.contains(&self)
    }

    /// Stable lowercase name, used by `--inject` specs and trace
    /// events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StoreRead => "store_read",
            FaultSite::StoreWrite => "store_write",
            FaultSite::StoreCorrupt => "store_corrupt",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::GuestTrap => "guest_trap",
            FaultSite::FuelExhaustion => "fuel_exhaustion",
            FaultSite::SlowCell => "slow_cell",
            FaultSite::ServeListener => "serve_listener",
            FaultSite::ServeDecode => "serve_decode",
            FaultSite::ServeCompute => "serve_compute",
            FaultSite::CrashStoreTempWrite => "crash_store_temp_write",
            FaultSite::CrashStoreFsync => "crash_store_fsync",
            FaultSite::CrashStoreRename => "crash_store_rename",
            FaultSite::CrashStoreQuarantine => "crash_store_quarantine",
            FaultSite::CrashSweepCommit => "crash_sweep_commit",
            FaultSite::CrashServeInstall => "crash_serve_install",
        }
    }

    /// The site's dense index into per-site counter arrays (only the
    /// enabled plan implementation allocates those).
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    #[must_use]
    pub(crate) fn index(self) -> usize {
        Self::ALL.iter().position(|&s| s == self).expect("in ALL")
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!("unknown fault site `{s}` (one of: {})", names.join(", "))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for site in FaultSite::ALL {
            assert!(seen.insert(site.name()), "duplicate name {site}");
            assert_eq!(site.name().parse::<FaultSite>().unwrap(), site);
        }
        assert!("bogus".parse::<FaultSite>().is_err());
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, site) in FaultSite::ALL.into_iter().enumerate() {
            assert_eq!(site.index(), i);
        }
    }

    #[test]
    fn crash_registry_is_exactly_the_crash_prefixed_sites() {
        for site in FaultSite::ALL {
            assert_eq!(site.is_crash(), site.name().starts_with("crash_"), "{site}");
        }
        for site in FaultSite::CRASH_SITES {
            assert!(site.is_crash());
        }
    }
}
