//! Wu–Larus branch-prediction heuristics with Dempster–Shafer evidence
//! combination.
//!
//! Each heuristic, when applicable to a conditional branch, contributes
//! a taken-probability estimate; estimates are fused with the
//! Dempster–Shafer rule `p = p₁p₂ / (p₁p₂ + (1−p₁)(1−p₂))`, exactly as
//! in *Static Branch Frequency and Program Profile Analysis*
//! (Wu & Larus, MICRO-27 — the paper's reference [20]). The hit-rate
//! constants are the published ones where our ISA has an analogous
//! signal.

use std::collections::BTreeMap;

use tpdbt_isa::{Cond, Instr, Pc, Terminator};

use crate::cfg::Cfg;

/// The individual heuristics (named as in Wu & Larus).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Loop branch: a back edge is taken with probability 0.88.
    LoopBranch,
    /// Loop exit: a branch inside a loop whose one successor leaves the
    /// loop keeps iterating with probability 0.80.
    LoopExit,
    /// Opcode: equality comparisons are usually false (taken 0.16 for
    /// `eq`, 0.84 for `ne`).
    Opcode,
    /// Guard: comparisons against zero of the `lt/le` kind rarely hold
    /// (taken 0.34).
    Guard,
    /// Loop header: a branch whose successor is a loop header is taken
    /// with probability 0.75.
    LoopHeader,
}

impl Heuristic {
    /// The heuristic's taken-probability estimate when it predicts
    /// "taken" (apply `1 − p` when it predicts the fall-through).
    #[must_use]
    pub fn confidence(self) -> f64 {
        match self {
            Heuristic::LoopBranch => 0.88,
            Heuristic::LoopExit => 0.80,
            Heuristic::Opcode => 0.84,
            Heuristic::Guard => 0.66,
            Heuristic::LoopHeader => 0.75,
        }
    }
}

/// A static prediction for a program's conditional branches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Prediction {
    /// Per-block taken probability for every reachable conditional
    /// block.
    pub branch_probabilities: BTreeMap<Pc, f64>,
    /// Which heuristics fired per block (diagnostics).
    pub applied: BTreeMap<Pc, Vec<Heuristic>>,
}

/// Dempster–Shafer combination of two taken probabilities.
#[must_use]
pub fn dempster_shafer(p1: f64, p2: f64) -> f64 {
    let num = p1 * p2;
    let den = num + (1.0 - p1) * (1.0 - p2);
    if den <= f64::EPSILON {
        0.5
    } else {
        num / den
    }
}

/// Applies the heuristics to every conditional branch of the CFG.
///
/// Branches with no applicable heuristic get probability 0.5.
#[must_use]
pub fn predict(cfg: &Cfg) -> Prediction {
    let mut prediction = Prediction::default();
    for node in cfg.nodes() {
        let Some(Terminator::Branch { taken, fallthrough }) = node.terminator else {
            continue;
        };
        let mut evidences: Vec<(Heuristic, f64)> = Vec::new();

        // Loop-branch heuristic: back edges are taken (or, if the
        // fall-through is the back edge, not taken).
        if cfg.is_back_edge(node.pc, taken) {
            evidences.push((Heuristic::LoopBranch, Heuristic::LoopBranch.confidence()));
        } else if cfg.is_back_edge(node.pc, fallthrough) {
            evidences.push((
                Heuristic::LoopBranch,
                1.0 - Heuristic::LoopBranch.confidence(),
            ));
        }

        // Loop-exit heuristic: inside a loop, the successor that leaves
        // the loop is avoided.
        if let Some(l) = cfg.innermost_loop(node.pc) {
            let taken_in = l.members.contains(&taken);
            let fall_in = l.members.contains(&fallthrough);
            if taken_in && !fall_in {
                evidences.push((Heuristic::LoopExit, Heuristic::LoopExit.confidence()));
            } else if fall_in && !taken_in {
                evidences.push((Heuristic::LoopExit, 1.0 - Heuristic::LoopExit.confidence()));
            }
        }

        // Loop-header heuristic: branching toward a loop header.
        let taken_is_header = cfg.loops().iter().any(|l| l.header == taken);
        let fall_is_header = cfg.loops().iter().any(|l| l.header == fallthrough);
        if taken_is_header && !fall_is_header && !cfg.is_back_edge(node.pc, taken) {
            evidences.push((Heuristic::LoopHeader, Heuristic::LoopHeader.confidence()));
        }

        let mut p = 0.5;
        let mut applied = Vec::new();
        for (h, estimate) in evidences {
            p = dempster_shafer(p, estimate);
            applied.push(h);
        }
        prediction.branch_probabilities.insert(node.pc, p);
        prediction.applied.insert(node.pc, applied);
    }
    prediction
}

/// Like [`predict`] (the CFG-shape heuristics), additionally applying
/// the opcode and guard heuristics, which need the program to inspect
/// the compare instruction itself.
#[must_use]
pub fn predict_with_program(cfg: &Cfg, program: &tpdbt_isa::Program) -> Prediction {
    let mut prediction = predict(cfg);
    for node in cfg.nodes() {
        let Some(Terminator::Branch { .. }) = node.terminator else {
            continue;
        };
        let Some(Instr::Br { cond, b, .. }) = program.get(node.end - 1) else {
            continue;
        };
        let extra = match cond {
            Cond::Eq => Some(1.0 - Heuristic::Opcode.confidence()),
            Cond::Ne => Some(Heuristic::Opcode.confidence()),
            Cond::Lt | Cond::Le => match b {
                tpdbt_isa::Operand::Imm(v) if *v <= 0 => Some(1.0 - Heuristic::Guard.confidence()),
                _ => None,
            },
            _ => None,
        };
        if let Some(estimate) = extra {
            let entry = prediction
                .branch_probabilities
                .get_mut(&node.pc)
                .expect("predicted above");
            *entry = dempster_shafer(*entry, estimate);
            let h = if matches!(cond, Cond::Eq | Cond::Ne) {
                Heuristic::Opcode
            } else {
                Heuristic::Guard
            };
            prediction.applied.entry(node.pc).or_default().push(h);
        }
    }
    prediction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use tpdbt_isa::{structured, ProgramBuilder, Reg};

    #[test]
    fn dempster_shafer_properties() {
        // Neutral element.
        assert!((dempster_shafer(0.5, 0.8) - 0.8).abs() < 1e-12);
        // Agreement strengthens.
        assert!(dempster_shafer(0.8, 0.8) > 0.8);
        // Symmetric.
        assert!((dempster_shafer(0.7, 0.9) - dempster_shafer(0.9, 0.7)).abs() < 1e-12);
        // Conflicting certainty degenerates gracefully.
        assert!((dempster_shafer(1.0, 0.0) - 0.5).abs() < 1e-12);
        // The Wu-Larus worked combination: 0.88 then 0.84.
        let c = dempster_shafer(dempster_shafer(0.5, 0.88), 0.84);
        assert!(c > 0.97 && c < 0.98, "{c}");
    }

    #[test]
    fn loop_latch_predicted_taken() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 50, |_| {}).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        let pred = predict_with_program(&cfg, &p);
        // The latch block's taken edge is the back edge.
        let latch_bp = pred
            .branch_probabilities
            .values()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(latch_bp >= 0.85, "latch predicted {latch_bp}");
        assert!(pred
            .applied
            .values()
            .flatten()
            .any(|h| *h == Heuristic::LoopBranch));
    }

    #[test]
    fn eq_guard_predicted_not_taken() {
        let mut b = ProgramBuilder::new();
        let t = b.fresh_label("t");
        b.br_imm(Cond::Eq, Reg::new(0), 7, t);
        b.out(Reg::new(0));
        b.bind(t).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        let pred = predict_with_program(&cfg, &p);
        let bp = pred.branch_probabilities[&0];
        assert!(bp < 0.3, "eq compare predicted taken {bp}");
    }

    #[test]
    fn unheuristic_branch_defaults_to_half() {
        let mut b = ProgramBuilder::new();
        let t = b.fresh_label("t");
        b.br_reg(Cond::Gt, Reg::new(0), Reg::new(1), t);
        b.out(Reg::new(0));
        b.bind(t).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        let pred = predict_with_program(&cfg, &p);
        assert!((pred.branch_probabilities[&0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 9, |b| {
            structured::if_else(
                b,
                Cond::Eq,
                Reg::new(1),
                0,
                |b| b.addi(Reg::new(2), Reg::new(2), 1),
                |b| b.subi(Reg::new(2), Reg::new(2), 1),
            )
            .unwrap();
        })
        .unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        let pred = predict_with_program(&cfg, &p);
        for (pc, bp) in &pred.branch_probabilities {
            assert!((0.0..=1.0).contains(bp), "block {pc} bp {bp}");
        }
        assert!(!pred.branch_probabilities.is_empty());
    }
}
