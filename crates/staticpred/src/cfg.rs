//! Static CFG construction, dominators, and natural-loop detection.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tpdbt_isa::{decode_block, Pc, Program, Terminator};

/// One CFG node: a basic block of the leader-partitioned static CFG.
///
/// Unlike the translator's dynamically discovered blocks (which may
/// overlap), static blocks are split at every *leader* (entry, branch
/// target, post-branch fall-through), so dominance and natural loops
/// are well defined. A block cut short by the next leader has
/// `terminator = None` and a single fall-through successor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgNode {
    /// Block identity (address of its first instruction).
    pub pc: Pc,
    /// One past the last instruction of the block.
    pub end: Pc,
    /// Terminator summary; `None` when the block falls through into the
    /// next leader.
    pub terminator: Option<Terminator>,
    /// Successor block addresses (conditional: `[taken, fallthrough]`;
    /// switch: deduplicated targets; call: `[callee]`; fall-through:
    /// `[next leader]`; return/halt: empty).
    pub succs: Vec<Pc>,
}

/// A natural loop found via dominance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopInfo {
    /// Loop header block.
    pub header: Pc,
    /// All member blocks (header included).
    pub members: BTreeSet<Pc>,
}

/// A static control-flow graph over basic blocks.
#[derive(Clone, Debug)]
pub struct Cfg {
    nodes: Vec<CfgNode>,
    index: BTreeMap<Pc, usize>,
    entry: Pc,
    idom: Vec<Option<usize>>,
    loops: Vec<LoopInfo>,
}

impl Cfg {
    /// All nodes in discovery (reverse-postorder-ish BFS) order.
    #[must_use]
    pub fn nodes(&self) -> &[CfgNode] {
        &self.nodes
    }

    /// The node for block `pc`, if reachable.
    #[must_use]
    pub fn node(&self, pc: Pc) -> Option<&CfgNode> {
        self.index.get(&pc).map(|&i| &self.nodes[i])
    }

    /// The program entry block.
    #[must_use]
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Natural loops (one per header; nested loops appear separately).
    #[must_use]
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Whether `a` dominates `b` (both must be reachable blocks).
    #[must_use]
    pub fn dominates(&self, a: Pc, b: Pc) -> bool {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return false;
        };
        let mut cur = Some(ib);
        while let Some(i) = cur {
            if i == ia {
                return true;
            }
            cur = self.idom[i];
            if cur == Some(i) {
                return i == ia;
            }
        }
        false
    }

    /// Whether the edge `from → to` is a back edge (target dominates
    /// source).
    #[must_use]
    pub fn is_back_edge(&self, from: Pc, to: Pc) -> bool {
        self.dominates(to, from)
    }

    /// The innermost loop containing `pc`, if any (smallest member
    /// set).
    #[must_use]
    pub fn innermost_loop(&self, pc: Pc) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| l.members.contains(&pc))
            .min_by_key(|l| l.members.len())
    }
}

fn static_succs(terminator: &Terminator) -> Vec<Pc> {
    match terminator {
        Terminator::Jump { target } => vec![*target],
        Terminator::Branch { taken, fallthrough } => vec![*taken, *fallthrough],
        Terminator::Switch { targets } => {
            let mut t = targets.clone();
            t.sort_unstable();
            t.dedup();
            t
        }
        Terminator::Call { target, .. } => vec![*target],
        Terminator::Return | Terminator::Halt => vec![],
    }
}

/// Builds the leader-partitioned CFG reachable from the program entry,
/// with dominators and natural loops. Return edges are not modelled
/// (statically unknown); call edges lead to the callee.
#[must_use]
pub fn build_cfg(program: &Program) -> Cfg {
    // Leaders: entry + every static jump target + post-branch
    // fall-through + call continuations.
    let mut leaders: BTreeSet<Pc> = program.static_leaders().into_iter().collect();
    for pc in 0..program.len() {
        if let Some(tpdbt_isa::Instr::Call { .. }) = program.get(pc) {
            if pc + 1 < program.len() {
                leaders.insert(pc + 1);
            }
        }
    }

    // Partitioned block at a leader: scan to the terminator, but stop
    // early if the next leader arrives first (fall-through block).
    let block_at = |pc: Pc| -> Option<CfgNode> {
        let block = decode_block(program, pc)?;
        let next_leader = leaders.range(pc + 1..).next().copied();
        match next_leader {
            Some(l) if l < block.end => Some(CfgNode {
                pc,
                end: l,
                terminator: None,
                succs: vec![l],
            }),
            _ => {
                let succs = static_succs(&block.terminator);
                Some(CfgNode {
                    pc,
                    end: block.end,
                    terminator: Some(block.terminator),
                    succs,
                })
            }
        }
    };

    // Reachability BFS over partitioned blocks.
    let mut index: BTreeMap<Pc, usize> = BTreeMap::new();
    let mut nodes: Vec<CfgNode> = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(program.entry());
    while let Some(pc) = queue.pop_front() {
        if index.contains_key(&pc) {
            continue;
        }
        let Some(node) = block_at(pc) else { continue };
        index.insert(pc, nodes.len());
        for &s in &node.succs {
            if !index.contains_key(&s) {
                queue.push_back(s);
            }
        }
        if let Some(Terminator::Call { next, .. }) = node.terminator {
            if !index.contains_key(&next) {
                queue.push_back(next);
            }
        }
        nodes.push(node);
    }

    let idom = compute_idoms(&nodes, &index);
    let loops = find_loops(&nodes, &index, &idom);
    Cfg {
        nodes,
        index,
        entry: program.entry(),
        idom,
        loops,
    }
}

/// Cooper–Harvey–Kennedy iterative dominators over the node list.
fn compute_idoms(nodes: &[CfgNode], index: &BTreeMap<Pc, usize>) -> Vec<Option<usize>> {
    let n = nodes.len();
    if n == 0 {
        return Vec::new();
    }
    // Predecessor lists.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for s in &node.succs {
            if let Some(&j) = index.get(s) {
                preds[j].push(i);
            }
        }
    }
    // Reverse postorder from node 0 (the entry is discovered first).
    let rpo = reverse_postorder(nodes, index);
    let mut order_of = vec![usize::MAX; n];
    for (k, &i) in rpo.iter().enumerate() {
        order_of[i] = k;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &order_of),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(mut a: usize, mut b: usize, idom: &[Option<usize>], order: &[usize]) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a].expect("processed nodes have idoms");
        }
        while order[b] > order[a] {
            b = idom[b].expect("processed nodes have idoms");
        }
    }
    a
}

fn reverse_postorder(nodes: &[CfgNode], index: &BTreeMap<Pc, usize>) -> Vec<usize> {
    let n = nodes.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS from node 0.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (node, ref mut child)) = stack.last_mut() {
        let succs = &nodes[node].succs;
        if *child < succs.len() {
            let next = index.get(&succs[*child]).copied();
            *child += 1;
            if let Some(next) = next {
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            }
        } else {
            post.push(node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

fn find_loops(
    nodes: &[CfgNode],
    index: &BTreeMap<Pc, usize>,
    idom: &[Option<usize>],
) -> Vec<LoopInfo> {
    let dominates = |a: usize, b: usize| -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    };
    // Predecessors for the body walk.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for s in &node.succs {
            if let Some(&j) = index.get(s) {
                preds[j].push(i);
            }
        }
    }
    let mut by_header: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        for s in &node.succs {
            let Some(&h) = index.get(s) else { continue };
            if idom[i].is_some() && dominates(h, i) {
                // Back edge i -> h: walk predecessors from i to collect
                // the natural loop body.
                let body = by_header.entry(h).or_default();
                body.insert(h);
                let mut work = vec![i];
                while let Some(m) = work.pop() {
                    if body.insert(m) {
                        work.extend(preds[m].iter().copied());
                    }
                }
            }
        }
    }
    by_header
        .into_iter()
        .map(|(h, members)| LoopInfo {
            header: nodes[h].pc,
            members: members.into_iter().map(|i| nodes[i].pc).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 10, |b| {
            structured::if_then(b, Cond::Eq, Reg::new(1), 0, |b| b.out(r)).unwrap();
        })
        .unwrap();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn discovers_reachable_blocks_and_a_loop() {
        let p = loop_program();
        let cfg = build_cfg(&p);
        assert!(cfg.nodes().len() >= 3);
        assert_eq!(cfg.loops().len(), 1);
        let l = &cfg.loops()[0];
        assert!(l.members.len() >= 2, "{l:?}");
        assert!(l.members.contains(&l.header));
    }

    #[test]
    fn entry_dominates_everything() {
        let p = loop_program();
        let cfg = build_cfg(&p);
        for node in cfg.nodes() {
            assert!(
                cfg.dominates(cfg.entry(), node.pc),
                "entry !dom {}",
                node.pc
            );
        }
    }

    #[test]
    fn back_edges_point_at_dominators() {
        let p = loop_program();
        let cfg = build_cfg(&p);
        let mut back = 0;
        for node in cfg.nodes() {
            for &s in &node.succs {
                if cfg.is_back_edge(node.pc, s) {
                    back += 1;
                    assert!(cfg.dominates(s, node.pc));
                }
            }
        }
        assert_eq!(back, 1, "exactly one loop latch in this program");
    }

    #[test]
    fn innermost_loop_of_nested_structure() {
        // Two nested counted loops.
        let mut b = ProgramBuilder::new();
        let (i, j) = (Reg::new(0), Reg::new(1));
        structured::counted_loop(&mut b, i, 0, 1, Cond::Lt, 5, |b| {
            structured::counted_loop(b, j, 0, 1, Cond::Lt, 7, |_| {}).unwrap();
        })
        .unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        assert_eq!(cfg.loops().len(), 2);
        let inner_header = cfg
            .loops()
            .iter()
            .min_by_key(|l| l.members.len())
            .unwrap()
            .header;
        let inner = cfg.innermost_loop(inner_header).unwrap();
        assert_eq!(inner.header, inner_header);
    }

    #[test]
    fn call_discovers_callee_and_continuation() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_label("f");
        b.call(f); // 0
        b.out(Reg::new(0)); // 1 (continuation)
        b.halt();
        b.bind(f).unwrap();
        b.ret();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        assert!(cfg.node(1).is_some(), "continuation discovered");
        assert!(cfg.node(3).is_some(), "callee discovered");
        // But no CFG edge models the dynamic return.
        assert!(cfg.node(3).unwrap().succs.is_empty());
    }

    #[test]
    fn unreachable_code_is_excluded() {
        let mut b = ProgramBuilder::new();
        let end = b.fresh_label("end");
        b.jmp(end);
        b.movi(Reg::new(0), 9); // dead
        b.bind(end).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        assert!(cfg.node(1).is_none());
    }
}
