//! Static profile estimation: heuristic branch probabilities plus
//! Markov flow propagation yield estimated block frequencies (Wagner et
//! al. / Wu & Larus), packaged as a [`PlainProfile`] so the offline
//! analyzer compares static prediction like any other profile.

use tpdbt_isa::{Program, Terminator};
use tpdbt_linalg::FlowGraph;
use tpdbt_profile::{BlockRecord, PlainProfile, SuccSlot, TermKind};

use crate::cfg::{build_cfg, Cfg};
use crate::heuristics::predict_with_program;

/// Scale factor turning unit-entry flow into integer pseudo-counts.
const SCALE: f64 = 1_000_000.0;

fn term_kind(t: Option<&Terminator>) -> TermKind {
    match t {
        // A fall-through block behaves like an unconditional jump.
        None | Some(Terminator::Jump { .. }) => TermKind::Jump,
        Some(Terminator::Branch { .. }) => TermKind::Cond,
        Some(Terminator::Switch { .. }) => TermKind::Switch,
        Some(Terminator::Call { .. }) => TermKind::Call,
        Some(Terminator::Return) => TermKind::Return,
        Some(Terminator::Halt) => TermKind::Halt,
    }
}

/// Per-edge static probabilities of a node: conditional branches use
/// the heuristic prediction; switches are uniform over distinct
/// targets; jumps and calls are certain.
fn edge_probs(cfg: &Cfg, pc: usize, bp: Option<f64>) -> Vec<(SuccSlot, usize, f64)> {
    let node = cfg.node(pc).expect("node exists");
    match &node.terminator {
        None => vec![(SuccSlot::Other(0), node.succs[0], 1.0)],
        Some(Terminator::Branch { taken, fallthrough }) => {
            let p = bp.unwrap_or(0.5);
            vec![
                (SuccSlot::Taken, *taken, p),
                (SuccSlot::Fallthrough, *fallthrough, 1.0 - p),
            ]
        }
        Some(Terminator::Jump { target }) => vec![(SuccSlot::Other(0), *target, 1.0)],
        Some(Terminator::Call { target, .. }) => vec![(SuccSlot::Other(0), *target, 1.0)],
        Some(Terminator::Switch { .. }) => {
            let n = node.succs.len().max(1);
            node.succs
                .iter()
                .enumerate()
                .map(|(i, &t)| (SuccSlot::Other(i as u32), t, 1.0 / n as f64))
                .collect()
        }
        Some(Terminator::Return | Terminator::Halt) => vec![],
    }
}

/// Estimates a whole-program profile without executing anything: the
/// entry block runs once, flow follows the heuristic probabilities, and
/// the resulting frequencies/edges are scaled into pseudo-counts.
///
/// The estimate is intra-procedural: call edges carry flow into the
/// callee, return flow is not modelled (it leaks), so downstream
/// comparisons should weight by a measured profile (which the paper's
/// metrics do anyway).
///
/// # Errors
///
/// Returns the solver error if flow propagation fails — impossible for
/// CFGs produced by validated programs, which always leak flow at
/// `halt`/`ret`.
pub fn static_profile(program: &Program) -> Result<PlainProfile, tpdbt_linalg::LinalgError> {
    let cfg = build_cfg(program);
    let prediction = predict_with_program(&cfg, program);

    // Solve block frequencies with unit inflow at the entry.
    let index: std::collections::BTreeMap<usize, usize> = cfg
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| (n.pc, i))
        .collect();
    let mut graph = FlowGraph::new(cfg.nodes().len());
    graph.add_external(index[&cfg.entry()], 1.0);
    for node in cfg.nodes() {
        let bp = prediction.branch_probabilities.get(&node.pc).copied();
        for (_, target, p) in edge_probs(&cfg, node.pc, bp) {
            if let Some(&to) = index.get(&target) {
                graph.add_edge(index[&node.pc], to, p.min(1.0));
            }
        }
    }
    let freqs = graph.solve()?;

    let mut profile = PlainProfile {
        entry: cfg.entry(),
        profiling_ops: 0,
        instructions: 0,
        ..Default::default()
    };
    for node in cfg.nodes() {
        let f = freqs[index[&node.pc]];
        let use_count = (f * SCALE).round() as u64;
        if use_count == 0 {
            continue;
        }
        let bp = prediction.branch_probabilities.get(&node.pc).copied();
        let edges = edge_probs(&cfg, node.pc, bp)
            .into_iter()
            .map(|(slot, target, p)| (slot, target, (f * p * SCALE).round() as u64))
            .collect();
        profile.blocks.insert(
            node.pc,
            BlockRecord {
                len: (node.end - node.pc) as u32,
                kind: Some(term_kind(node.terminator.as_ref())),
                use_count,
                edges,
            },
        );
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};

    #[test]
    fn loop_blocks_get_amplified_frequencies() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 100, |_| {}).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let profile = static_profile(&p).unwrap();
        // The entry runs once (SCALE); the loop body should be
        // predicted to run several times more.
        let entry_use = profile.blocks[&p.entry()].use_count;
        let max_use = profile.blocks.values().map(|r| r.use_count).max().unwrap();
        assert!(
            max_use >= 4 * entry_use,
            "loop amplification missing: entry {entry_use}, max {max_use}"
        );
    }

    #[test]
    fn static_profile_is_flow_consistent() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 10, |b| {
            structured::if_then(b, Cond::Eq, Reg::new(1), 0, |b| b.out(r)).unwrap();
        })
        .unwrap();
        b.halt();
        let p = b.build().unwrap();
        let profile = static_profile(&p).unwrap();
        for (pc, rec) in &profile.blocks {
            let edge_sum: u64 = rec.edges.iter().map(|(_, _, c)| c).sum();
            if rec.kind == Some(TermKind::Halt) || rec.kind == Some(TermKind::Return) {
                assert_eq!(edge_sum, 0);
            } else {
                // Rounding allows ±1 per edge.
                let slack = rec.edges.len() as u64 + 1;
                assert!(
                    edge_sum.abs_diff(rec.use_count) <= slack,
                    "block {pc}: edges {edge_sum} vs use {}",
                    rec.use_count
                );
            }
        }
    }

    #[test]
    fn analyzer_accepts_static_profiles() {
        // The static estimate slots into the standard comparison
        // machinery: compare it against itself and get zero deviation.
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 20, |_| {}).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let profile = static_profile(&p).unwrap();
        let sd = tpdbt_profile::metrics::sd_bp_plain(&profile, &profile).unwrap();
        assert_eq!(sd, 0.0);
    }
}
