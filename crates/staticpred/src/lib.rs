//! Static control-flow analysis and branch-prediction heuristics.
//!
//! The paper's loop-trip-count mapping `LP = (T−1)/T` cites Wu & Larus,
//! *Static Branch Frequency and Program Profile Analysis* (MICRO-27) —
//! the classic recipe for predicting branch probabilities **without any
//! profile**: Ball–Larus-style heuristics assign each conditional a
//! probability, evidence from several applicable heuristics is fused
//! with the Dempster–Shafer rule, and block frequencies follow from the
//! same Markov flow propagation the paper's NAVEP step uses.
//!
//! In this reproduction the static predictor is the *zero-profile
//! baseline*: the paper compares the initial profile against the
//! training input; this crate adds the third rung below both —
//! `reproduce ext-static` reports how much even a few hundred profiled
//! visits buy over the best profile-free guess.
//!
//! # Example
//!
//! ```
//! use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};
//! use tpdbt_staticpred::{build_cfg, predict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let r = Reg::new(0);
//! structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 100, |_| {})?;
//! b.halt();
//! let p = b.build()?;
//!
//! let cfg = build_cfg(&p);
//! let prediction = predict(&cfg);
//! // The loop's back edge is predicted strongly taken (the loop-branch
//! // heuristic).
//! let (_, bp) = prediction
//!     .branch_probabilities
//!     .iter()
//!     .find(|(_, bp)| **bp > 0.5)
//!     .expect("a loop branch");
//! assert!(*bp >= 0.85);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod heuristics;
mod profile;

pub use cfg::{build_cfg, Cfg, CfgNode, LoopInfo};
pub use heuristics::{dempster_shafer, predict, predict_with_program, Heuristic, Prediction};
pub use profile::static_profile;
