//! Property tests for static CFG analysis and prediction over random
//! structured programs.

use proptest::prelude::*;

use tpdbt_isa::{structured, Cond, Program, ProgramBuilder, Reg};
use tpdbt_staticpred::{build_cfg, predict_with_program, static_profile};

#[derive(Clone, Debug)]
enum Stmt {
    Loop { trips: i64, nested: bool },
    IfElse { cond: u8 },
    Ops(u8),
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (1i64..30, any::<bool>()).prop_map(|(trips, nested)| Stmt::Loop { trips, nested }),
        (0u8..6).prop_map(|cond| Stmt::IfElse { cond }),
        (1u8..5).prop_map(Stmt::Ops),
    ]
}

fn cond_of(i: u8) -> Cond {
    match i % 6 {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        _ => Cond::Ge,
    }
}

fn build(stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::new();
    let acc = Reg::new(3);
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::Loop { trips, nested } => {
                let ctr = Reg::new(10 + (i % 4) as u8);
                let inner = Reg::new(14 + (i % 4) as u8);
                let nested = *nested;
                structured::counted_loop(&mut b, ctr, 0, 1, Cond::Lt, *trips, move |b| {
                    if nested {
                        structured::counted_loop(b, inner, 0, 1, Cond::Lt, 5, |b| {
                            b.addi(acc, acc, 1);
                        })
                        .unwrap();
                    } else {
                        b.addi(acc, acc, 1);
                    }
                })
                .unwrap();
            }
            Stmt::IfElse { cond } => {
                b.and(Reg::new(4), acc, 7);
                structured::if_else(
                    &mut b,
                    cond_of(*cond),
                    Reg::new(4),
                    3,
                    |b| b.addi(acc, acc, 2),
                    |b| b.subi(acc, acc, 1),
                )
                .unwrap();
            }
            Stmt::Ops(n) => {
                for _ in 0..*n {
                    b.muli(acc, acc, 3);
                }
            }
        }
    }
    b.out(acc);
    b.halt();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Partitioned CFG invariants: blocks don't overlap, the entry is a
    /// node, successors are nodes, and the entry dominates every node.
    #[test]
    fn cfg_partition_invariants(stmts in prop::collection::vec(arb_stmt(), 1..7)) {
        let p = build(&stmts);
        let cfg = build_cfg(&p);
        prop_assert!(cfg.node(cfg.entry()).is_some());
        let mut spans: Vec<(usize, usize)> =
            cfg.nodes().iter().map(|n| (n.pc, n.end)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
        }
        for node in cfg.nodes() {
            prop_assert!(node.pc < node.end);
            for s in &node.succs {
                prop_assert!(cfg.node(*s).is_some(), "dangling successor {s}");
            }
            prop_assert!(cfg.dominates(cfg.entry(), node.pc));
        }
    }

    /// Every natural loop contains its header, and the number of loops
    /// equals the number of loop statements we emitted (nested loops
    /// count twice).
    #[test]
    fn loop_detection_counts(stmts in prop::collection::vec(arb_stmt(), 1..7)) {
        let p = build(&stmts);
        let cfg = build_cfg(&p);
        let expected: usize = stmts
            .iter()
            .map(|s| match s {
                Stmt::Loop { nested: true, .. } => 2,
                Stmt::Loop { nested: false, .. } => 1,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(cfg.loops().len(), expected, "{:?}", stmts);
        for l in cfg.loops() {
            prop_assert!(l.members.contains(&l.header));
        }
    }

    /// Predictions are probabilities and cover exactly the conditional
    /// blocks.
    #[test]
    fn predictions_are_total_over_branches(stmts in prop::collection::vec(arb_stmt(), 1..7)) {
        let p = build(&stmts);
        let cfg = build_cfg(&p);
        let pred = predict_with_program(&cfg, &p);
        let n_branches = cfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.terminator, Some(tpdbt_isa::Terminator::Branch { .. })))
            .count();
        prop_assert_eq!(pred.branch_probabilities.len(), n_branches);
        for bp in pred.branch_probabilities.values() {
            prop_assert!((0.0..=1.0).contains(bp));
        }
    }

    /// The static profile solves for every program in the family and
    /// respects flow bounds: no block frequency exceeds total inflow
    /// amplified by its loops' geometric sums (loose sanity: finite and
    /// non-negative, entry ≈ SCALE).
    #[test]
    fn static_profile_is_finite(stmts in prop::collection::vec(arb_stmt(), 1..6)) {
        let p = build(&stmts);
        let profile = static_profile(&p).unwrap();
        let entry_use = profile.blocks[&p.entry()].use_count;
        prop_assert!((999_000..=1_001_000).contains(&entry_use), "entry {entry_use}");
        for rec in profile.blocks.values() {
            prop_assert!(rec.use_count < u64::MAX / 2);
        }
    }

    /// Static loop-latch predictions agree with actual long-loop
    /// behaviour: for a single counted loop with trips >= 10, the
    /// predicted latch BP (>= 0.85) lands in the same range class as
    /// the measured BP.
    #[test]
    fn latch_prediction_matches_reality(trips in 10i64..200) {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, trips, |_| {}).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let cfg = build_cfg(&p);
        let pred = predict_with_program(&cfg, &p);
        let max_bp = pred.branch_probabilities.values().copied().fold(0.0f64, f64::max);
        let actual = (trips - 1) as f64 / trips as f64;
        prop_assert_eq!(
            tpdbt_profile::mismatch::bp_range(max_bp),
            tpdbt_profile::mismatch::bp_range(actual)
        );
    }
}
