//! Translator errors.

use std::error::Error;
use std::fmt;

use tpdbt_vm::VmError;

/// Errors from a translated run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbtError {
    /// The guest program trapped.
    Guest(VmError),
}

impl DbtError {
    /// The guest trap behind this error, if that's what it is. Sweep
    /// harnesses use this to classify a failed cell (deterministic
    /// guest defect vs. fuel/watchdog exhaustion) without matching on
    /// the error's display text.
    #[must_use]
    pub fn as_guest_trap(&self) -> Option<&VmError> {
        match self {
            DbtError::Guest(e) => Some(e),
        }
    }
}

impl fmt::Display for DbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtError::Guest(e) => write!(f, "guest trap: {e}"),
        }
    }
}

impl Error for DbtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbtError::Guest(e) => Some(e),
        }
    }
}

impl From<VmError> for DbtError {
    fn from(e: VmError) -> Self {
        DbtError::Guest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_guest_traps_with_source() {
        let e = DbtError::from(VmError::DivideByZero { pc: 3 });
        assert!(e.to_string().contains("division by zero"));
        assert!(e.source().is_some());
    }
}
