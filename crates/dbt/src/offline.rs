//! Offline region formation over a plain profile (paper §5,
//! future-work bullet 3).
//!
//! The paper does not compute `Sd.CP(train)` / `Sd.LP(train)` because
//! `INIP(train)` and `AVEP` carry no region information; it suggests
//! applying a region-formation algorithm to the profiles offline. This
//! module does exactly that: it runs the translator's region former
//! over a [`PlainProfile`]'s counters (instead of live frozen
//! counters), producing [`RegionDump`]s that the analyzer can evaluate
//! against `AVEP` like any `INIP(T)` dump.

use std::collections::BTreeMap;

use tpdbt_isa::{decode_block, Pc, Program, Terminator};
use tpdbt_profile::{BlockRecord, InipDump, PlainProfile, RegionDump};

use crate::config::RegionPolicy;
use crate::region::{form_region, BlockSource};

struct ProfileSource<'a> {
    terminators: BTreeMap<Pc, Terminator>,
    lens: BTreeMap<Pc, u32>,
    profile: &'a PlainProfile,
}

impl<'a> BlockSource for ProfileSource<'a> {
    fn terminator(&self, pc: Pc) -> Option<&Terminator> {
        self.terminators.get(&pc)
    }
    fn record(&self, pc: Pc) -> Option<&BlockRecord> {
        self.profile.blocks.get(&pc)
    }
    fn block_len(&self, pc: Pc) -> Option<u32> {
        self.lens.get(&pc).copied()
    }
}

/// Forms regions from a whole-run profile, mirroring the runtime
/// optimizer's policy: blocks whose `use` count reaches `threshold`
/// seed regions, hottest first; a block swallowed by an earlier region
/// neither seeds nor re-enters as an entry.
///
/// Returns regions in formation order with dense ids.
#[must_use]
pub fn form_offline_regions(
    program: &Program,
    profile: &PlainProfile,
    policy: &RegionPolicy,
    threshold: u64,
) -> Vec<RegionDump> {
    let mut terminators = BTreeMap::new();
    let mut lens = BTreeMap::new();
    for &pc in profile.blocks.keys() {
        if let Some(block) = decode_block(program, pc) {
            lens.insert(pc, (block.end - block.start) as u32);
            terminators.insert(pc, block.terminator);
        }
    }
    let src = ProfileSource {
        terminators,
        lens,
        profile: &profile.clone(),
    };

    let mut seeds: Vec<(&Pc, &BlockRecord)> = profile
        .blocks
        .iter()
        .filter(|(_, r)| r.use_count >= threshold)
        .collect();
    seeds.sort_by_key(|(_, r)| std::cmp::Reverse(r.use_count));

    let mut taken_entries: std::collections::BTreeSet<Pc> = std::collections::BTreeSet::new();
    let mut members: std::collections::BTreeSet<Pc> = std::collections::BTreeSet::new();
    let mut regions = Vec::new();
    for (&pc, _) in seeds {
        if taken_entries.contains(&pc) || members.contains(&pc) {
            continue;
        }
        let Some(formed) = form_region(&src, policy, pc) else {
            continue;
        };
        taken_entries.insert(pc);
        for &m in &formed.copies {
            members.insert(m);
        }
        let id = regions.len();
        regions.push(formed.into_dump(id));
    }
    regions
}

/// Packages a plain profile plus offline-formed regions as an
/// [`InipDump`], so the standard analyzer (`NAVEP` → `Sd.CP`/`Sd.LP`)
/// applies. Regions whose blocks are absent from `reference` are
/// dropped (a training run can touch blocks the reference run never
/// executes, and normalization needs reference probabilities for every
/// copy).
#[must_use]
pub fn as_inip_with_regions(
    profile: &PlainProfile,
    mut regions: Vec<RegionDump>,
    reference: &PlainProfile,
    threshold: u64,
) -> InipDump {
    regions.retain(|r| r.copies.iter().all(|pc| reference.blocks.contains_key(pc)));
    for (i, r) in regions.iter_mut().enumerate() {
        r.id = i;
    }
    InipDump {
        threshold,
        regions,
        blocks: profile.blocks.clone(),
        entry: profile.entry,
        profiling_ops: profile.profiling_ops,
        cycles: 0,
        instructions: profile.instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dbt, DbtConfig};
    use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};
    use tpdbt_profile::RegionKind;

    fn looped_program() -> Program {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 5000, |_| {}).unwrap();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn offline_former_finds_the_hot_loop() {
        let p = looped_program();
        let profile = Dbt::new(DbtConfig::no_opt())
            .run(&p, &[])
            .unwrap()
            .as_plain_profile();
        let regions = form_offline_regions(&p, &profile, &RegionPolicy::default(), 100);
        assert!(!regions.is_empty());
        assert!(regions.iter().any(|r| r.kind == RegionKind::Loop));
        // Edges respect the analyzer's topological invariant.
        for r in &regions {
            for e in &r.edges {
                assert!(e.to > e.from || e.to == 0);
            }
        }
    }

    #[test]
    fn cold_profile_forms_no_regions() {
        let p = looped_program();
        let profile = Dbt::new(DbtConfig::no_opt())
            .run(&p, &[])
            .unwrap()
            .as_plain_profile();
        assert!(form_offline_regions(&p, &profile, &RegionPolicy::default(), 1 << 40).is_empty());
    }

    #[test]
    fn packaging_drops_regions_missing_from_reference() {
        let p = looped_program();
        let profile = Dbt::new(DbtConfig::no_opt())
            .run(&p, &[])
            .unwrap()
            .as_plain_profile();
        let regions = form_offline_regions(&p, &profile, &RegionPolicy::default(), 100);
        let n = regions.len();
        assert!(n > 0);
        // Against itself: everything retained, ids dense.
        let dump = as_inip_with_regions(&profile, regions.clone(), &profile, 100);
        assert_eq!(dump.regions.len(), n);
        assert_eq!(dump.regions[0].id, 0);
        // Against an empty reference: everything dropped.
        let empty = PlainProfile::default();
        let dump = as_inip_with_regions(&profile, regions, &empty, 100);
        assert!(dump.regions.is_empty());
    }

    #[test]
    fn offline_regions_analyze_cleanly() {
        let p = looped_program();
        let profile = Dbt::new(DbtConfig::no_opt())
            .run(&p, &[])
            .unwrap()
            .as_plain_profile();
        let regions = form_offline_regions(&p, &profile, &RegionPolicy::default(), 100);
        let dump = as_inip_with_regions(&profile, regions, &profile, 100);
        let m = tpdbt_profile::report::analyze(&dump, &profile).unwrap();
        // Self-comparison: zero deviation everywhere it is defined.
        assert_eq!(m.sd_bp, Some(0.0));
        if let Some(lp) = m.sd_lp {
            assert!(lp.abs() < 1e-12);
        }
    }
}
