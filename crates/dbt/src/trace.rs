//! Trace compilation: an optimized region lowered to a single
//! straight-line superinstruction trace.
//!
//! The cached backend's region chains (PR 5) removed per-pc cache
//! lookups from optimized execution, but each block still paid the
//! full generic machinery per step: backend dispatch, chain-table
//! indexing, 1:1 micro-op replay, `Flow` construction, and the
//! engine's terminator-to-successor-slot mapping. A [`CompiledTrace`]
//! removes all of it for the common case. At region-install time each
//! copy is lowered to a [`TraceSegment`]: its body re-encoded as fused
//! superinstructions ([`tpdbt_isa::FusedOp`]) and its terminator
//! pre-resolved to a [`Guard`] — the compiled form of the region's
//! internal edge table. Conditional branches (including the
//! float-compare-plus-branch idiom) evaluate inline in the guard and
//! map straight to the next segment index; leaving the region through
//! any direction the edge table does not cover is a *side exit*
//! ([`EXIT`]) that falls back to per-block execution in the engine.
//!
//! Invariants:
//!
//! * A trace is **bitwise transparent**: executing segment `i` leaves
//!   the machine exactly as the cached backend's per-block replay of
//!   copy `i` would (fused bodies are sequential compositions; guards
//!   evaluate precisely the terminator expression of
//!   [`tpdbt_vm::exec_term`]).
//! * Segment `i` corresponds 1:1 to region copy `i`, so the engine's
//!   per-copy bookkeeping (fuel accounting, side-exit statistics,
//!   adaptive retirement) is unchanged.
//! * Traces are installed and retired **atomically** with their
//!   region's chain — both live in one [`crate::backend::RegionCode`]
//!   slot published by table swap, so a reform or retirement can never
//!   leave a stale trace behind while the chain changes underneath it.
//! * Terminators with engine-visible bookkeeping (returns feed the
//!   first-occurrence `ret_targets` numbering; calls push the shadow
//!   stack) compile to [`Guard::Other`], which defers to the engine's
//!   generic path instead of guessing.

use std::sync::Arc;

use tpdbt_isa::{fuse_ops, BlockBody, Cond, DecodedBlock, MicroOp, MicroOperand, MicroTerm, Pc};
use tpdbt_profile::{RegionEdge, SuccSlot};
use tpdbt_vm::Machine;

/// Successor sentinel: control leaves the region (side exit or tail
/// completion — the engine distinguishes by comparing against the
/// region's tail copy).
pub(crate) const EXIT: u32 = u32::MAX;

/// A segment's pre-resolved terminator decision. The fast variants are
/// trap-free and mutate at most the registers their constituent ops
/// would; everything with traps or engine-visible side effects is
/// [`Guard::Other`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum Guard {
    /// Conditional branch: evaluate inline, follow the compiled edge.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
        /// Guest target when taken.
        taken: Pc,
        /// Guest target when not taken.
        fall: Pc,
        /// Next segment when taken ([`EXIT`] = leave region).
        on_taken: u32,
        /// Next segment when not taken.
        on_fall: u32,
    },
    /// The cmp+branch superinstruction: a trailing `FCmpLt` fused into
    /// its conditional branch. Writes the compare result register, then
    /// branches on it — exactly the two constituent steps.
    FCmpBranch {
        /// Float compare: left register.
        fa: u8,
        /// Float compare: right register.
        fb: u8,
        /// Integer destination of the compare result.
        dst: u8,
        /// Branch condition over `dst`.
        cond: Cond,
        /// Branch right operand.
        b: MicroOperand,
        /// Guest target when taken.
        taken: Pc,
        /// Guest target when not taken.
        fall: Pc,
        /// Next segment when taken.
        on_taken: u32,
        /// Next segment when not taken.
        on_fall: u32,
    },
    /// Unconditional jump with a statically known target.
    Direct {
        /// Next segment.
        next: u32,
        /// Guest target.
        target: Pc,
    },
    /// Anything with traps or engine bookkeeping (call, return, switch,
    /// halt): the engine runs its generic terminator + outcome path.
    Other,
}

impl Guard {
    /// Evaluates a fast guard against the machine, returning the next
    /// segment index and guest target. `None` means [`Guard::Other`]:
    /// the caller must run the generic terminator path. Trap-free; the
    /// only architectural write is [`Guard::FCmpBranch`]'s compare
    /// result, identical to its constituent `FCmpLt`.
    #[inline]
    pub(crate) fn quick_eval(self, m: &mut Machine) -> Option<(u32, Pc)> {
        let rhs = |m: &Machine, b: MicroOperand| match b {
            MicroOperand::Reg(r) => m.reg(r as usize),
            MicroOperand::Imm(v) => v,
        };
        match self {
            Guard::Branch {
                cond,
                a,
                b,
                taken,
                fall,
                on_taken,
                on_fall,
            } => {
                let y = rhs(m, b);
                Some(if cond.eval(m.reg(a as usize), y) {
                    (on_taken, taken)
                } else {
                    (on_fall, fall)
                })
            }
            Guard::FCmpBranch {
                fa,
                fb,
                dst,
                cond,
                b,
                taken,
                fall,
                on_taken,
                on_fall,
            } => {
                let v = i64::from(m.freg(fa as usize) < m.freg(fb as usize));
                m.set_reg(dst as usize, v);
                let y = rhs(m, b);
                Some(if cond.eval(m.reg(dst as usize), y) {
                    (on_taken, taken)
                } else {
                    (on_fall, fall)
                })
            }
            Guard::Direct { next, target } => Some((next, target)),
            Guard::Other => None,
        }
    }
}

/// One region copy lowered for trace execution.
#[derive(Clone, Debug)]
pub(crate) struct TraceSegment {
    /// Guest address of the copy's first instruction.
    pub start: Pc,
    /// Instruction count including the terminator (the engine's
    /// per-block `instructions` / cycle accounting quantum).
    pub len: u32,
    /// Guest address of the terminator.
    pub term_pc: Pc,
    /// The fused straight-line body (terminator excluded; for
    /// [`Guard::FCmpBranch`] the trailing compare is excluded too — the
    /// guard performs it).
    pub body: BlockBody,
    /// The pre-decoded terminator, for [`Guard::Other`] segments.
    pub term: MicroTerm,
    /// The compiled successor decision.
    pub guard: Guard,
}

/// An optimized region compiled into a straight-line superinstruction
/// trace (one [`TraceSegment`] per region copy, entry first).
///
/// Produced at region-install time by the `cached-fused` backend (and
/// by async optimizer workers); executed by the engine's traced region
/// loop. Opaque outside the crate — tests can observe shape through
/// [`CompiledTrace::starts`].
#[derive(Clone, Debug)]
pub struct CompiledTrace {
    pub(crate) segs: Box<[TraceSegment]>,
}

impl CompiledTrace {
    /// Number of segments (== region copies).
    #[must_use]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the trace has no segments (never true for a compiled
    /// region, which has at least its entry copy).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The guest start address of each segment, in copy order — the
    /// trace's identity for staleness checks.
    #[must_use]
    pub fn starts(&self) -> Vec<Pc> {
        self.segs.iter().map(|s| s.start).collect()
    }
}

/// Compiles a region into a straight-line trace. `chain` is the copy
/// list resolved to decoded blocks (parallel to `copies`); `edges` is
/// the region's internal edge table. Returns `None` when the chain
/// does not cover the copy list (the caller falls back to per-block
/// chains).
pub(crate) fn compile_trace(
    copies: &[Pc],
    edges: &[RegionEdge],
    chain: &[Arc<DecodedBlock>],
) -> Option<CompiledTrace> {
    if chain.len() != copies.len() || copies.is_empty() {
        return None;
    }
    let mut segs = Vec::with_capacity(copies.len());
    for (i, block) in chain.iter().enumerate() {
        if block.start != copies[i] {
            return None;
        }
        let succ = |slot: SuccSlot| -> u32 {
            edges
                .iter()
                .find(|e| e.from == i && e.slot == slot)
                .map_or(EXIT, |e| e.to as u32)
        };
        let flat = block.body.flat_ops();
        // cmp+branch fusion: a trailing float compare feeding the
        // block's own conditional branch moves into the guard.
        let (body_ops, fcmp) = match (flat.last(), &block.term) {
            (Some(&MicroOp::FCmpLt { dst, a: fa, b: fb }), MicroTerm::Branch { a, .. })
                if *a == dst =>
            {
                (&flat[..flat.len() - 1], Some((fa, fb, dst)))
            }
            _ => (&flat[..], None),
        };
        let guard = match (&block.term, fcmp) {
            (
                MicroTerm::Branch {
                    cond,
                    b,
                    taken,
                    fallthrough,
                    ..
                },
                Some((fa, fb, dst)),
            ) => Guard::FCmpBranch {
                fa,
                fb,
                dst,
                cond: *cond,
                b: *b,
                taken: *taken,
                fall: *fallthrough,
                on_taken: succ(SuccSlot::Taken),
                on_fall: succ(SuccSlot::Fallthrough),
            },
            (
                MicroTerm::Branch {
                    cond,
                    a,
                    b,
                    taken,
                    fallthrough,
                },
                None,
            ) => Guard::Branch {
                cond: *cond,
                a: *a,
                b: *b,
                taken: *taken,
                fall: *fallthrough,
                on_taken: succ(SuccSlot::Taken),
                on_fall: succ(SuccSlot::Fallthrough),
            },
            (MicroTerm::Jump { target }, _) => Guard::Direct {
                next: succ(SuccSlot::Other(0)),
                target: *target,
            },
            _ => Guard::Other,
        };
        // Same representation policy as `DecodedBlock::fused`: a body
        // with no specialized window stays flat — the 1:1 loop is the
        // faster form for it.
        let fused = fuse_ops(body_ops);
        let body = if fused.len() < body_ops.len() {
            BlockBody::Fused(fused)
        } else {
            BlockBody::Flat(body_ops.to_vec().into())
        };
        segs.push(TraceSegment {
            start: block.start,
            len: (block.end - block.start) as u32,
            term_pc: block.term_pc(),
            body,
            term: block.term.clone(),
            guard,
        });
    }
    Some(CompiledTrace {
        segs: segs.into_boxed_slice(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{Cond, ProgramBuilder, Reg};
    use tpdbt_profile::RegionEdge;

    /// A two-block loop: entry with a conditional latch back to itself.
    #[test]
    fn compiles_branch_guards_with_edge_table() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 1); // 0
        b.addi(Reg::new(1), Reg::new(1), 2); // 1 (fuses with 0)
        b.br_imm(Cond::Lt, Reg::new(0), 10, top); // 2
        b.halt(); // 3
        let p = b.build().unwrap();
        let block = Arc::new(DecodedBlock::decode(&p, 0).unwrap());
        let edges = vec![RegionEdge {
            from: 0,
            slot: SuccSlot::Taken,
            to: 0,
        }];
        let trace = compile_trace(&[0], &edges, &[Arc::clone(&block)]).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.starts(), vec![0]);
        let seg = &trace.segs[0];
        assert_eq!((seg.start, seg.len, seg.term_pc), (0, 3, 2));
        // The two add-immediates fused into one superinstruction.
        assert_eq!(seg.body.instr_count(), 2);
        if let BlockBody::Fused(ops) = &seg.body {
            assert_eq!(ops.len(), 1);
        } else {
            panic!("trace bodies are fused");
        }
        match seg.guard {
            Guard::Branch {
                on_taken, on_fall, ..
            } => {
                assert_eq!(on_taken, 0, "loop back to entry");
                assert_eq!(on_fall, EXIT, "fall-through leaves the region");
            }
            ref g => panic!("expected a branch guard, got {g:?}"),
        }
    }

    #[test]
    fn fcmp_feeding_the_branch_moves_into_the_guard() {
        use tpdbt_isa::FReg;
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.bind(top).unwrap();
        b.fadd(FReg::new(0), FReg::new(0), FReg::new(1)); // 0
        b.fcmp_lt(Reg::new(2), FReg::new(0), FReg::new(2)); // 1
        b.br_imm(Cond::Ne, Reg::new(2), 0, top); // 2
        b.halt();
        let p = b.build().unwrap();
        let block = Arc::new(DecodedBlock::decode(&p, 0).unwrap());
        let trace = compile_trace(&[0], &[], &[block]).unwrap();
        let seg = &trace.segs[0];
        // The compare left the body for the guard.
        assert_eq!(seg.body.instr_count(), 1);
        assert!(matches!(
            seg.guard,
            Guard::FCmpBranch {
                fa: 0,
                fb: 2,
                dst: 2,
                cond: Cond::Ne,
                on_taken: EXIT,
                on_fall: EXIT,
                ..
            }
        ));
    }

    #[test]
    fn mismatched_chain_refuses_to_compile() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let block = Arc::new(DecodedBlock::decode(&p, 0).unwrap());
        assert!(compile_trace(&[0, 1], &[], &[block]).is_none());
        assert!(compile_trace(&[], &[], &[]).is_none());
        let wrong = Arc::new(DecodedBlock::decode(&p, 0).unwrap());
        assert!(compile_trace(&[3], &[], &[wrong]).is_none());
    }

    #[test]
    fn quick_eval_matches_exec_term_on_both_directions() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 1);
        b.br_imm(Cond::Lt, Reg::new(0), 2, top);
        b.halt();
        let p = b.build().unwrap();
        let block = Arc::new(DecodedBlock::decode(&p, 0).unwrap());
        let edges = vec![RegionEdge {
            from: 0,
            slot: SuccSlot::Taken,
            to: 0,
        }];
        let trace = compile_trace(&[0], &edges, &[block]).unwrap();
        let guard = trace.segs[0].guard;
        let mut m = Machine::new(&p, &[]);
        // r0 = 1 < 2: taken.
        m.set_reg(0, 1);
        assert_eq!(guard.quick_eval(&mut m), Some((0, 0)));
        // r0 = 5: not taken, exits to the fall-through pc.
        m.set_reg(0, 5);
        assert_eq!(guard.quick_eval(&mut m), Some((EXIT, 2)));
    }
}
