//! Region formation: the optimization phase's trace/loop selection.
//!
//! Seeds (hot candidate blocks) grow into regions along their most
//! likely successors, using the `taken/use` branch probabilities
//! collected in the profiling phase — the paper's hyperblock-style
//! region and loop formation. Hammocks (if-then and if-else diamonds)
//! whose unlikely arm is still warm are merged into the region so that
//! regions have internal branching, and a trace that closes back on its
//! entry becomes a **loop region**.
//!
//! Copies are appended in growth order, so every internal edge goes
//! forward (`to > from`) except loop back edges (`to == 0`) — the
//! topological invariant [`tpdbt_profile::RegionEdge`] documents.

use tpdbt_isa::{Pc, Terminator};
use tpdbt_profile::{BlockRecord, RegionDump, RegionEdge, RegionKind, SuccSlot};

use crate::config::RegionPolicy;

/// Read access to decoded blocks and their live counters, as needed by
/// region formation (implemented by the engine's translation cache).
pub(crate) trait BlockSource {
    /// The terminator of the block at `pc`, if translated.
    fn terminator(&self, pc: Pc) -> Option<&Terminator>;
    /// The profile record of the block at `pc`, if translated.
    fn record(&self, pc: Pc) -> Option<&BlockRecord>;
    /// Number of instructions in the block at `pc`.
    fn block_len(&self, pc: Pc) -> Option<u32>;
}

/// A freshly formed region, before registration with the engine.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FormedRegion {
    pub kind: RegionKind,
    pub copies: Vec<Pc>,
    pub edges: Vec<RegionEdge>,
    pub tail: usize,
    /// Total instructions across copies (optimization cost input).
    pub total_instrs: u64,
}

impl FormedRegion {
    /// Converts to the dump representation with the given id.
    pub fn into_dump(self, id: usize) -> RegionDump {
        RegionDump {
            id,
            kind: self.kind,
            copies: self.copies,
            edges: self.edges,
            tail: self.tail,
        }
    }
}

/// The best (highest-count) outcome of a block plus its probability,
/// derived from live counters.
fn best_outcome(record: &BlockRecord) -> Option<(SuccSlot, Pc, f64)> {
    let total: u64 = record.edges.iter().map(|(_, _, c)| c).sum();
    if total == 0 {
        return None;
    }
    // First maximum wins so ties resolve deterministically (taken edge
    // before fall-through, matching edge insertion order).
    let mut best: Option<&(SuccSlot, Pc, u64)> = None;
    for e in &record.edges {
        if best.is_none_or(|b| e.2 > b.2) {
            best = Some(e);
        }
    }
    best.map(|&(slot, target, c)| (slot, target, c as f64 / total as f64))
}

/// The probability and target of a specific slot.
fn slot_outcome(record: &BlockRecord, slot: SuccSlot) -> Option<(Pc, f64)> {
    let total: u64 = record.edges.iter().map(|(_, _, c)| c).sum();
    if total == 0 {
        return None;
    }
    record
        .edges
        .iter()
        .find(|(s, _, _)| *s == slot)
        .map(|&(_, target, c)| (target, c as f64 / total as f64))
}

/// Whether growth may pass through this terminator (only direct
/// control flow; switches, calls, returns, and halts end regions).
fn growable(term: &Terminator) -> bool {
    matches!(term, Terminator::Jump { .. } | Terminator::Branch { .. })
}

/// Context for one region-formation run.
struct Grower<'a, S: BlockSource> {
    src: &'a S,
    policy: &'a RegionPolicy,
    seed: Pc,
    copies: Vec<Pc>,
    edges: Vec<RegionEdge>,
    kind: RegionKind,
}

impl<'a, S: BlockSource> Grower<'a, S> {
    fn new(src: &'a S, policy: &'a RegionPolicy, seed: Pc) -> Self {
        Grower {
            src,
            policy,
            seed,
            copies: vec![seed],
            edges: Vec::new(),
            kind: RegionKind::Trace,
        }
    }

    fn contains(&self, pc: Pc) -> bool {
        self.copies.contains(&pc)
    }

    fn room_for(&self, extra: usize) -> bool {
        self.copies.len() + extra <= self.policy.max_region_blocks
    }

    fn push_copy(&mut self, pc: Pc) -> usize {
        self.copies.push(pc);
        self.copies.len() - 1
    }

    /// If `arm_pc` is a warm block that rejoins at `join`, returns the
    /// slot through which it rejoins.
    fn arm_rejoins_at(&self, arm_pc: Pc, join: Pc) -> Option<SuccSlot> {
        if arm_pc == self.seed || self.contains(arm_pc) {
            return None;
        }
        let term = self.src.terminator(arm_pc)?;
        if !growable(term) {
            return None;
        }
        let record = self.src.record(arm_pc)?;
        let (slot, target, prob) = best_outcome(record)?;
        (target == join && prob >= self.policy.main_path_prob).then_some(slot)
    }

    /// Grows the main path from copy `cur`; returns the tail copy index.
    fn grow(&mut self, mut cur: usize) -> usize {
        loop {
            let pc = self.copies[cur];
            let Some(term) = self.src.terminator(pc) else {
                return cur;
            };
            if !growable(term) {
                return cur;
            }
            let Some(record) = self.src.record(pc) else {
                return cur;
            };
            let Some((best_slot, best_target, best_prob)) = best_outcome(record) else {
                return cur;
            };

            // Hammock handling for conditional branches.
            let mut pending_arm: Option<(usize, SuccSlot)> = None;
            let mut join = best_target;
            let mut join_slot = best_slot;
            if let Terminator::Branch { .. } = term {
                let other_slot = if best_slot == SuccSlot::Taken {
                    SuccSlot::Fallthrough
                } else {
                    SuccSlot::Taken
                };
                let other = slot_outcome(record, other_slot);
                if best_prob >= self.policy.main_path_prob {
                    // if-then shape: unlikely arm rejoins at the likely
                    // target.
                    if let Some((arm_pc, arm_prob)) = other {
                        if arm_prob >= self.policy.include_prob && self.room_for(2) {
                            if let Some(rejoin_slot) = self.arm_rejoins_at(arm_pc, best_target) {
                                let k = self.push_copy(arm_pc);
                                self.edges.push(RegionEdge {
                                    from: cur,
                                    slot: other_slot,
                                    to: k,
                                });
                                pending_arm = Some((k, rejoin_slot));
                            }
                        }
                    }
                } else {
                    // if-else shape: neither side dominates; include
                    // both arms when they rejoin at a common block.
                    let Some((other_pc, other_prob)) = other else {
                        return cur;
                    };
                    if other_prob < self.policy.include_prob
                        || best_prob < self.policy.include_prob
                        || !self.room_for(3)
                    {
                        return cur;
                    }
                    let (Some(r1), Some(r2)) = (
                        self.src.record(best_target).and_then(best_outcome),
                        self.src.record(other_pc).and_then(best_outcome),
                    ) else {
                        return cur;
                    };
                    let rejoin_ok = |pc: Pc, prob: f64| {
                        prob >= self.policy.main_path_prob
                            && self.src.terminator(pc).is_some_and(growable)
                    };
                    if r1.1 != r2.1
                        || !rejoin_ok(best_target, r1.2)
                        || !rejoin_ok(other_pc, r2.2)
                        || best_target == self.seed
                        || other_pc == self.seed
                        || self.contains(best_target)
                        || self.contains(other_pc)
                        || best_target == other_pc
                    {
                        return cur;
                    }
                    let k1 = self.push_copy(best_target);
                    self.edges.push(RegionEdge {
                        from: cur,
                        slot: best_slot,
                        to: k1,
                    });
                    let k2 = self.push_copy(other_pc);
                    self.edges.push(RegionEdge {
                        from: cur,
                        slot: other_slot,
                        to: k2,
                    });
                    join = r1.1;
                    join_slot = r1.0;
                    // The two arms rejoin: fall through to common join
                    // handling with two pending arms via a small trick —
                    // treat k1 as `cur` and k2 as the pending arm.
                    cur = k1;
                    pending_arm = Some((k2, r2.0));
                }
            } else if best_prob < 1.0 - 1e-9 {
                // A jump always has probability 1; anything else stops.
                return cur;
            }

            if matches!(term, Terminator::Branch { .. })
                && pending_arm.is_none()
                && best_prob < self.policy.main_path_prob
            {
                return cur;
            }

            // Attach the join block.
            if join == self.seed {
                self.kind = RegionKind::Loop;
                self.edges.push(RegionEdge {
                    from: cur,
                    slot: join_slot,
                    to: 0,
                });
                if let Some((k, s)) = pending_arm {
                    self.edges.push(RegionEdge {
                        from: k,
                        slot: s,
                        to: 0,
                    });
                }
                return cur;
            }
            if self.contains(join)
                || !self.room_for(1)
                || self.src.record(join).is_none()
                || self.src.terminator(join).is_none()
            {
                return cur;
            }
            let j = self.push_copy(join);
            self.edges.push(RegionEdge {
                from: cur,
                slot: join_slot,
                to: j,
            });
            if let Some((k, s)) = pending_arm {
                self.edges.push(RegionEdge {
                    from: k,
                    slot: s,
                    to: j,
                });
            }
            cur = j;
        }
    }
}

impl<'a, S: BlockSource> Grower<'a, S> {
    /// Loop-region arm recovery: after the main path closes back on the
    /// entry, warm branch outcomes that leave the trace but re-enter at
    /// the loop entry through a short chain are folded into the region
    /// (hyperblock-style). Without this, a loop whose body contains a
    /// diamond would measure its *path* probability as the loop-back
    /// probability instead of its trip count.
    fn recover_loop_arms(&mut self) {
        let snapshot = self.copies.len();
        for i in 0..snapshot {
            let pc = self.copies[i];
            let Some(Terminator::Branch { .. }) = self.src.terminator(pc) else {
                continue;
            };
            let Some(record) = self.src.record(pc) else {
                continue;
            };
            for slot in [SuccSlot::Taken, SuccSlot::Fallthrough] {
                if self.edges.iter().any(|e| e.from == i && e.slot == slot) {
                    continue;
                }
                let Some((target, prob)) = slot_outcome(record, slot) else {
                    continue;
                };
                if prob < self.policy.include_prob {
                    continue;
                }
                if target == self.seed {
                    // A second direct back edge.
                    self.edges.push(RegionEdge {
                        from: i,
                        slot,
                        to: 0,
                    });
                    continue;
                }
                // Follow a short dominant chain hoping to land on the
                // entry.
                let mut chain: Vec<(Pc, SuccSlot)> = Vec::new();
                let mut cur = target;
                let mut rejoins = false;
                for _ in 0..3 {
                    if self.contains(cur) || chain.iter().any(|(p, _)| *p == cur) {
                        break;
                    }
                    let Some(term) = self.src.terminator(cur) else {
                        break;
                    };
                    if !growable(term) {
                        break;
                    }
                    let Some((next_slot, next, next_prob)) =
                        self.src.record(cur).and_then(best_outcome)
                    else {
                        break;
                    };
                    if next_prob < self.policy.main_path_prob {
                        break;
                    }
                    chain.push((cur, next_slot));
                    if next == self.seed {
                        rejoins = true;
                        break;
                    }
                    cur = next;
                }
                if !rejoins || !self.room_for(chain.len()) {
                    continue;
                }
                let mut from = i;
                let mut via = slot;
                for (chain_pc, chain_slot) in chain {
                    let k = self.push_copy(chain_pc);
                    self.edges.push(RegionEdge {
                        from,
                        slot: via,
                        to: k,
                    });
                    from = k;
                    via = chain_slot;
                }
                self.edges.push(RegionEdge {
                    from,
                    slot: via,
                    to: 0,
                });
            }
        }
    }
}

/// Forms a region seeded at `seed`. Returns `None` if the seed has no
/// translated block.
pub(crate) fn form_region<S: BlockSource>(
    src: &S,
    policy: &RegionPolicy,
    seed: Pc,
) -> Option<FormedRegion> {
    src.record(seed)?;
    let mut grower = Grower::new(src, policy, seed);
    let tail = grower.grow(0);
    if grower.kind == RegionKind::Loop {
        grower.recover_loop_arms();
    }
    let total_instrs = grower
        .copies
        .iter()
        .map(|&pc| u64::from(src.block_len(pc).unwrap_or(1)))
        .sum();
    debug_assert!(
        grower.edges.iter().all(|e| e.to > e.from || e.to == 0),
        "edges must be topologically ordered"
    );
    Some(FormedRegion {
        kind: grower.kind,
        copies: grower.copies,
        edges: grower.edges,
        tail,
        total_instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tpdbt_profile::TermKind;

    struct Mock {
        blocks: HashMap<Pc, (Terminator, BlockRecord)>,
    }

    impl Mock {
        fn new() -> Self {
            Mock {
                blocks: HashMap::new(),
            }
        }

        fn cond(&mut self, pc: Pc, taken_to: Pc, fall_to: Pc, use_count: u64, taken: u64) {
            let term = Terminator::Branch {
                taken: taken_to,
                fallthrough: fall_to,
            };
            let record = BlockRecord {
                len: 3,
                kind: Some(TermKind::Cond),
                use_count,
                edges: vec![
                    (SuccSlot::Taken, taken_to, taken),
                    (SuccSlot::Fallthrough, fall_to, use_count - taken),
                ],
            };
            self.blocks.insert(pc, (term, record));
        }

        fn jump(&mut self, pc: Pc, to: Pc, use_count: u64) {
            let term = Terminator::Jump { target: to };
            let record = BlockRecord {
                len: 2,
                kind: Some(TermKind::Jump),
                use_count,
                edges: vec![(SuccSlot::Other(0), to, use_count)],
            };
            self.blocks.insert(pc, (term, record));
        }

        fn halt(&mut self, pc: Pc, use_count: u64) {
            self.blocks.insert(
                pc,
                (
                    Terminator::Halt,
                    BlockRecord {
                        len: 1,
                        kind: Some(TermKind::Halt),
                        use_count,
                        edges: vec![],
                    },
                ),
            );
        }
    }

    impl BlockSource for Mock {
        fn terminator(&self, pc: Pc) -> Option<&Terminator> {
            self.blocks.get(&pc).map(|(t, _)| t)
        }
        fn record(&self, pc: Pc) -> Option<&BlockRecord> {
            self.blocks.get(&pc).map(|(_, r)| r)
        }
        fn block_len(&self, pc: Pc) -> Option<u32> {
            self.blocks.get(&pc).map(|(_, r)| r.len)
        }
    }

    fn policy() -> RegionPolicy {
        RegionPolicy::default()
    }

    #[test]
    fn straight_trace_follows_likely_path() {
        let mut m = Mock::new();
        // 10 -(0.9 taken)-> 20 -(jump)-> 30 (halt terminator stops).
        m.cond(10, 20, 90, 100, 90);
        m.jump(20, 30, 90);
        m.halt(30, 90);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.kind, RegionKind::Trace);
        assert_eq!(r.copies, vec![10, 20, 30]);
        assert_eq!(r.tail, 2);
        assert_eq!(r.total_instrs, 6);
        assert_eq!(
            r.edges,
            vec![
                RegionEdge {
                    from: 0,
                    slot: SuccSlot::Taken,
                    to: 1
                },
                RegionEdge {
                    from: 1,
                    slot: SuccSlot::Other(0),
                    to: 2
                },
            ]
        );
    }

    #[test]
    fn loop_region_detected_on_back_edge() {
        let mut m = Mock::new();
        // 10 -> 20 -> back to 10 with p 0.95.
        m.jump(10, 20, 1000);
        m.cond(20, 10, 99, 1000, 950);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.kind, RegionKind::Loop);
        assert_eq!(r.copies, vec![10, 20]);
        assert!(r.edges.contains(&RegionEdge {
            from: 1,
            slot: SuccSlot::Taken,
            to: 0
        }));
    }

    #[test]
    fn self_loop_single_block() {
        let mut m = Mock::new();
        m.cond(10, 10, 99, 1000, 990);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.kind, RegionKind::Loop);
        assert_eq!(r.copies, vec![10]);
        assert_eq!(
            r.edges,
            vec![RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 0
            }]
        );
    }

    #[test]
    fn unlikely_branch_stops_growth() {
        let mut m = Mock::new();
        // 50/50 branch with arms that do not rejoin: stop at seed.
        m.cond(10, 20, 30, 100, 50);
        m.halt(20, 50);
        m.halt(30, 50);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.copies, vec![10]);
        assert_eq!(r.tail, 0);
    }

    #[test]
    fn if_then_hammock_is_included() {
        let mut m = Mock::new();
        // 10: 0.6 taken -> 40 (join), 0.4 fall -> 20 (arm); arm jumps to 40.
        m.cond(10, 40, 20, 100, 60);
        m.jump(20, 40, 40);
        m.jump(40, 50, 100);
        m.halt(50, 100);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.kind, RegionKind::Trace);
        assert_eq!(r.copies, vec![10, 20, 40, 50]);
        let arm_edge = RegionEdge {
            from: 0,
            slot: SuccSlot::Fallthrough,
            to: 1,
        };
        let main_edge = RegionEdge {
            from: 0,
            slot: SuccSlot::Taken,
            to: 2,
        };
        let rejoin_edge = RegionEdge {
            from: 1,
            slot: SuccSlot::Other(0),
            to: 2,
        };
        assert!(r.edges.contains(&arm_edge), "{:?}", r.edges);
        assert!(r.edges.contains(&main_edge));
        assert!(r.edges.contains(&rejoin_edge));
        // Tail is the last main-path block.
        assert_eq!(r.copies[r.tail], 50);
    }

    #[test]
    fn if_else_diamond_is_included() {
        let mut m = Mock::new();
        // 10: 50/50 to 20 / 30; both jump to 40; 40 halts.
        m.cond(10, 20, 30, 100, 50);
        m.jump(20, 40, 50);
        m.jump(30, 40, 50);
        m.halt(40, 100);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.copies, vec![10, 20, 30, 40]);
        assert_eq!(r.copies[r.tail], 40);
        // All four edges of the diamond are present.
        assert_eq!(r.edges.len(), 4);
    }

    #[test]
    fn region_size_is_bounded() {
        let mut m = Mock::new();
        // A long chain of jumps.
        for i in 0..100 {
            m.jump(i, i + 1, 10);
        }
        m.halt(100, 10);
        let small = RegionPolicy {
            max_region_blocks: 5,
            ..policy()
        };
        let r = form_region(&m, &small, 0).unwrap();
        assert_eq!(r.copies.len(), 5);
    }

    #[test]
    fn duplication_blocks_inner_revisit() {
        let mut m = Mock::new();
        // 10 -> 20 -> 30 -> 20 (cycle not through seed): growth stops
        // rather than revisiting 20.
        m.jump(10, 20, 100);
        m.jump(20, 30, 100);
        m.cond(30, 20, 99, 100, 90);
        m.halt(99, 10);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.kind, RegionKind::Trace);
        assert_eq!(r.copies, vec![10, 20, 30]);
        assert_eq!(r.copies[r.tail], 30);
    }

    #[test]
    fn loop_arm_recovery_folds_parallel_latch() {
        let mut m = Mock::new();
        // Loop: 7 (diamond head) -T(0.57)-> 16 (then-arm+latch) -> 7;
        //                        -F(0.43)-> 14 (jump) -> 17 (latch) -> 7.
        m.cond(7, 16, 14, 1000, 570);
        m.cond(16, 7, 99, 570, 568);
        m.jump(14, 17, 430);
        m.cond(17, 7, 99, 430, 428);
        m.halt(99, 4);
        let r = form_region(&m, &policy(), 7).unwrap();
        assert_eq!(r.kind, RegionKind::Loop);
        assert!(
            r.copies.contains(&14),
            "arm chain start folded: {:?}",
            r.copies
        );
        assert!(
            r.copies.contains(&17),
            "arm chain latch folded: {:?}",
            r.copies
        );
        // Both latches have back edges to the entry.
        let back_edges = r.edges.iter().filter(|e| e.to == 0).count();
        assert_eq!(back_edges, 2, "{:?}", r.edges);
        // Invariant still holds.
        for e in &r.edges {
            assert!(e.to > e.from || e.to == 0);
        }
    }

    #[test]
    fn untranslated_seed_returns_none() {
        let m = Mock::new();
        assert!(form_region(&m, &policy(), 77).is_none());
    }

    #[test]
    fn edges_are_topologically_ordered() {
        let mut m = Mock::new();
        m.cond(10, 40, 20, 100, 55);
        m.jump(20, 40, 45);
        m.cond(40, 10, 50, 100, 80); // loops back to seed
        m.halt(50, 20);
        let r = form_region(&m, &policy(), 10).unwrap();
        assert_eq!(r.kind, RegionKind::Loop);
        for e in &r.edges {
            assert!(e.to > e.from || e.to == 0, "bad edge {e:?}");
        }
    }
}
