//! Pluggable execution backends: how translated guest code actually
//! runs.
//!
//! The engine in [`crate::engine`] owns *when* things happen — block
//! discovery, counter bumps, threshold registration, region formation,
//! freezing — while an [`ExecBackend`] owns *how* a translated block's
//! instructions execute. Two backends are provided:
//!
//! * [`InterpBackend`] — the reference backend: per-instruction
//!   dispatch through [`tpdbt_vm::step`], exactly the execution model
//!   the engine used before backends existed.
//! * [`CachedBackend`] — a pre-decoded translation cache: each block
//!   is decoded once at translation time into a
//!   [`tpdbt_isa::DecodedBlock`] (a flat micro-op buffer plus a
//!   pre-resolved terminator) and every later execution replays the
//!   buffer through [`tpdbt_vm::exec_op`] / [`tpdbt_vm::exec_term`].
//!   Optimized regions additionally get direct block-to-successor
//!   chaining: at region-install time the copies are resolved to their
//!   decoded bodies, so region execution never consults the per-pc
//!   cache.
//!
//! Both backends drive the same execute-half semantics in `tpdbt-vm`,
//! so architectural state, outputs, and every profile counter are
//! bitwise identical by construction — the differential proptest in
//! `tests/backend_differential.rs` pins this.

use std::sync::Arc;

use tpdbt_isa::{Block, DecodedBlock, Pc, PredecodedProgram, Program};
use tpdbt_optimizer::SwapCell;
use tpdbt_vm::{exec_op, exec_term, step, Flow, Machine, VmError};

/// The region→chain table: per-region copies resolved to decoded
/// bodies. Published wholesale (see [`CachedBackend`]), never mutated
/// in place.
pub type ChainTable = Vec<Vec<Arc<DecodedBlock>>>;

/// Which execution backend runs translated code — the user-facing
/// selection knob (`--backend {interp,cached}` on every binary).
///
/// The backend never changes a run's observable results (profiles,
/// outputs, stats, simulated cycles) — only how fast the host executes
/// the guest — so it is deliberately excluded from
/// [`crate::DbtConfig::fingerprint`] and the two backends share
/// profile-store cache entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Reference per-instruction interpreter dispatch.
    Interp,
    /// Pre-decoded translation cache (the default).
    #[default]
    Cached,
}

impl Backend {
    /// All backends, for test matrices.
    pub const ALL: [Backend; 2] = [Backend::Interp, Backend::Cached];

    /// The flag-value name (`"interp"` / `"cached"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Cached => "cached",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(Backend::Interp),
            "cached" => Ok(Backend::Cached),
            other => Err(format!(
                "unknown backend '{other}' (expected 'interp' or 'cached')"
            )),
        }
    }
}

/// Where a block execution was dispatched from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecSite {
    /// Profiling-phase (unoptimized) dispatch.
    Unopt,
    /// Copy `copy` of optimized region `region`.
    Region {
        /// Region id (index into the engine's region table).
        region: usize,
        /// Copy index within the region.
        copy: usize,
    },
}

/// How translated code executes. Implementations must be semantically
/// transparent: for any block, [`ExecBackend::exec_block`] must effect
/// exactly the architectural-state transition and [`Flow`] that
/// per-instruction [`tpdbt_vm::step`] dispatch would, including trap
/// payloads.
///
/// The engine reports translation-cache lifecycle events through the
/// remaining hooks: [`ExecBackend::on_translate`] at fast-translation
/// (cache insert), [`ExecBackend::install_region`] at region formation
/// *and* re-formation (optimized-code insert / replace), and
/// [`ExecBackend::retire_region`] at adaptive retirement (optimized-code
/// invalidation).
pub trait ExecBackend {
    /// The block at `block.start` was fast-translated.
    fn on_translate(&mut self, program: &Program, block: &Block) {
        let _ = (program, block);
    }

    /// Region `region` was formed or re-formed over `copies` (block
    /// start addresses, entry first).
    fn install_region(&mut self, region: usize, copies: &[Pc]) {
        let _ = (region, copies);
    }

    /// Region `region` was formed on a background optimizer thread and
    /// arrives with its copies already compiled (`chain`, parallel to
    /// `copies`). The default delegates to [`ExecBackend::install_region`]
    /// — backends without a translation cache ignore the chain.
    fn install_region_compiled(
        &mut self,
        region: usize,
        copies: &[Pc],
        chain: Vec<Arc<DecodedBlock>>,
    ) {
        let _ = chain;
        self.install_region(region, copies);
    }

    /// Region `region` was retired: its optimized code must never run
    /// again.
    fn retire_region(&mut self, region: usize) {
        let _ = region;
    }

    /// Executes the translated block spanning `[start, end)`, returning
    /// the terminator's control flow.
    ///
    /// # Errors
    ///
    /// Propagates guest traps ([`VmError`]) exactly as interpretation
    /// of the same instructions would.
    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError>;
}

/// The reference backend: per-instruction dispatch through
/// [`tpdbt_vm::step`], byte-for-byte the execution model the engine
/// used before the translation cache existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpBackend;

impl InterpBackend {
    /// Creates the reference backend.
    #[must_use]
    pub fn new() -> InterpBackend {
        InterpBackend
    }
}

impl ExecBackend for InterpBackend {
    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        _site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError> {
        let mut flow = Flow::Halted;
        for at in start..end {
            machine.set_pc(at);
            flow = step(program, machine)?;
            if matches!(flow, Flow::Halted) && at + 1 < end {
                unreachable!("halt only terminates blocks");
            }
        }
        Ok(flow)
    }
}

/// Replays a decoded block's micro-ops and terminator. After a
/// successful block the machine PC rests on the terminator, matching
/// the interpreter backend's final state exactly.
fn run_decoded(block: &DecodedBlock, machine: &mut Machine) -> Result<Flow, VmError> {
    let mut pc = block.start;
    for op in block.ops.iter() {
        exec_op(op, pc, machine)?;
        pc += 1;
    }
    machine.set_pc(pc);
    exec_term(block.term.view(), pc, machine)
}

/// The pre-decoded translation cache.
///
/// Blocks are decoded exactly once — at fast-translation time — into
/// [`DecodedBlock`]s; optionally a shared [`PredecodedProgram`] makes
/// that a once-per-*guest* cost across runs and threads (sweep ladder
/// cells, serve queries) instead of once per run.
///
/// The region→chain table lives behind a [`SwapCell`]: installs and
/// retirements build a *new* table and publish it in one atomic swap,
/// while the execution thread reads through a private [`Arc`] snapshot
/// refreshed at each publication point. This is what makes the
/// background optimizer's install genuinely atomic — no reader can
/// observe a half-written chain — and keeps the backend `Send + Sync`
/// clean behind the `ExecBackend` seam.
#[derive(Debug)]
pub struct CachedBackend {
    /// Cross-run shared decode cache, when the driver provided one.
    shared: Option<Arc<PredecodedProgram>>,
    /// The translation cache proper: decoded block per start address.
    blocks: Vec<Option<Arc<DecodedBlock>>>,
    /// Publication handle for the region→chain table. Cleared slots on
    /// retirement, replaced wholesale on (re-)installation.
    chains: SwapCell<ChainTable>,
    /// The execution thread's snapshot of `chains` (plain `Arc` deref
    /// on the hot path; refreshed after every publish).
    view: Arc<ChainTable>,
}

impl CachedBackend {
    /// Creates a translation cache for a program of `program_len`
    /// instructions. When `shared` is given (and sized for the same
    /// program), decoded blocks are pulled from — and published to —
    /// it, so concurrent and successive runs of the same guest decode
    /// each block only once globally.
    #[must_use]
    pub fn new(program_len: usize, shared: Option<Arc<PredecodedProgram>>) -> CachedBackend {
        let shared = shared.filter(|p| p.len() == program_len);
        let view: Arc<ChainTable> = Arc::new(Vec::new());
        CachedBackend {
            shared,
            blocks: vec![None; program_len],
            chains: SwapCell::from_arc(Arc::clone(&view)),
            view,
        }
    }

    /// Number of blocks currently in the translation cache.
    #[must_use]
    pub fn cached_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// Publishes an updated chain table and refreshes the local view.
    fn publish(&mut self, table: ChainTable) {
        let table = Arc::new(table);
        self.chains.store(Arc::clone(&table));
        self.view = table;
    }

    /// Copy-on-write slot update: clone the current table, replace
    /// `region`'s chain, publish.
    fn install_chain(&mut self, region: usize, chain: Vec<Arc<DecodedBlock>>) {
        let mut table = (*self.view).clone();
        if table.len() <= region {
            table.resize_with(region + 1, Vec::new);
        }
        table[region] = chain;
        self.publish(table);
    }
}

impl ExecBackend for CachedBackend {
    fn on_translate(&mut self, program: &Program, block: &Block) {
        let pc = block.start;
        if self.blocks[pc].is_some() {
            return;
        }
        let decoded = match &self.shared {
            Some(cache) => cache.block(program, pc),
            None => Some(Arc::new(DecodedBlock::from_block(program, block))),
        };
        self.blocks[pc] = decoded;
    }

    fn install_region(&mut self, region: usize, copies: &[Pc]) {
        let chain: Vec<Arc<DecodedBlock>> = copies
            .iter()
            .map(|&pc| {
                Arc::clone(
                    self.blocks[pc]
                        .as_ref()
                        .expect("region members are translated before formation"),
                )
            })
            .collect();
        self.install_chain(region, chain);
    }

    fn install_region_compiled(
        &mut self,
        region: usize,
        copies: &[Pc],
        chain: Vec<Arc<DecodedBlock>>,
    ) {
        if chain.len() == copies.len() {
            self.install_chain(region, chain);
        } else {
            // A worker that could not resolve every copy falls back to
            // the engine-thread resolution path.
            self.install_region(region, copies);
        }
    }

    fn retire_region(&mut self, region: usize) {
        if self.view.get(region).is_some_and(|c| !c.is_empty()) {
            let mut table = (*self.view).clone();
            table[region].clear();
            self.publish(table);
        }
    }

    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError> {
        if let ExecSite::Region { region, copy } = site {
            if let Some(block) = self.view.get(region).and_then(|c| c.get(copy)) {
                return run_decoded(block, machine);
            }
        }
        if self.blocks[start].is_none() {
            // Defensive: the engine always translates before executing,
            // but a standalone user of the backend may not.
            self.blocks[start] = match &self.shared {
                Some(cache) => cache.block(program, start),
                None => DecodedBlock::decode(program, start).map(Arc::new),
            };
        }
        let block = self.blocks[start]
            .as_ref()
            .ok_or(VmError::BadPc { pc: start })?;
        debug_assert_eq!((block.start, block.end), (start, end));
        let _ = end;
        run_decoded(block, machine)
    }
}

/// Static dispatch over the two built-in backends (keeps the engine's
/// hot loop free of virtual calls).
#[derive(Debug)]
pub(crate) enum BackendImpl {
    Interp(InterpBackend),
    Cached(CachedBackend),
}

impl BackendImpl {
    pub(crate) fn new(
        backend: Backend,
        program: &Program,
        shared: Option<Arc<PredecodedProgram>>,
    ) -> BackendImpl {
        match backend {
            Backend::Interp => BackendImpl::Interp(InterpBackend::new()),
            Backend::Cached => BackendImpl::Cached(CachedBackend::new(program.len(), shared)),
        }
    }
}

impl ExecBackend for BackendImpl {
    fn on_translate(&mut self, program: &Program, block: &Block) {
        match self {
            BackendImpl::Interp(b) => b.on_translate(program, block),
            BackendImpl::Cached(b) => b.on_translate(program, block),
        }
    }

    fn install_region(&mut self, region: usize, copies: &[Pc]) {
        match self {
            BackendImpl::Interp(b) => b.install_region(region, copies),
            BackendImpl::Cached(b) => b.install_region(region, copies),
        }
    }

    fn install_region_compiled(
        &mut self,
        region: usize,
        copies: &[Pc],
        chain: Vec<Arc<DecodedBlock>>,
    ) {
        match self {
            BackendImpl::Interp(b) => b.install_region_compiled(region, copies, chain),
            BackendImpl::Cached(b) => b.install_region_compiled(region, copies, chain),
        }
    }

    fn retire_region(&mut self, region: usize) {
        match self {
            BackendImpl::Interp(b) => b.retire_region(region),
            BackendImpl::Cached(b) => b.retire_region(region),
        }
    }

    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError> {
        match self {
            BackendImpl::Interp(b) => b.exec_block(program, start, end, site, machine),
            BackendImpl::Cached(b) => b.exec_block(program, start, end, site, machine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{decode_block, Cond, ProgramBuilder, Reg};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(8);
        let top = b.fresh_label("top");
        b.movi(Reg::new(1), 3); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 5); // 1
        b.store(Reg::new(0), Reg::new(1), 0); // 2
        b.out(Reg::new(0)); // 3
        b.br_imm(Cond::Lt, Reg::new(0), 20, top); // 4
        b.halt(); // 5
        b.build().unwrap()
    }

    #[test]
    fn backend_flag_round_trips() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("jit".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Cached);
    }

    #[test]
    fn both_backends_step_a_block_identically() {
        let p = sample();
        let block = decode_block(&p, 0).unwrap();
        let mut interp = InterpBackend::new();
        let mut cached = CachedBackend::new(p.len(), None);
        cached.on_translate(&p, &block);
        assert_eq!(cached.cached_blocks(), 1);

        let mut mi = Machine::new(&p, &[]);
        let mut mc = mi.clone();
        let fi = interp
            .exec_block(&p, block.start, block.end, ExecSite::Unopt, &mut mi)
            .unwrap();
        let fc = cached
            .exec_block(&p, block.start, block.end, ExecSite::Unopt, &mut mc)
            .unwrap();
        assert_eq!(fi, fc);
        assert_eq!(mi, mc, "architectural state must be bitwise identical");
    }

    #[test]
    fn shared_predecode_is_published_across_backends() {
        let p = sample();
        let shared = Arc::new(PredecodedProgram::new(&p));
        let block = decode_block(&p, 0).unwrap();
        let mut first = CachedBackend::new(p.len(), Some(Arc::clone(&shared)));
        first.on_translate(&p, &block);
        assert_eq!(shared.decoded_count(), 1);
        // A second run of the same guest reuses the decode.
        let mut second = CachedBackend::new(p.len(), Some(Arc::clone(&shared)));
        second.on_translate(&p, &block);
        assert_eq!(shared.decoded_count(), 1);
        let a = first.blocks[0].as_ref().unwrap();
        let b = second.blocks[0].as_ref().unwrap();
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn mismatched_shared_cache_is_ignored() {
        let p = sample();
        let mut other = ProgramBuilder::new();
        other.halt();
        let tiny = other.build().unwrap();
        let shared = Arc::new(PredecodedProgram::new(&tiny));
        let backend = CachedBackend::new(p.len(), Some(shared));
        assert!(backend.shared.is_none());
    }

    #[test]
    fn region_chains_install_and_retire() {
        let p = sample();
        let entry = decode_block(&p, 0).unwrap();
        let body = decode_block(&p, 1).unwrap();
        let mut cached = CachedBackend::new(p.len(), None);
        cached.on_translate(&p, &entry);
        cached.on_translate(&p, &body);
        cached.install_region(0, &[1, 1]);
        assert_eq!(cached.view[0].len(), 2);
        // Region execution uses the chain directly.
        let mut m = Machine::new(&p, &[]);
        let flow = cached
            .exec_block(
                &p,
                body.start,
                body.end,
                ExecSite::Region { region: 0, copy: 1 },
                &mut m,
            )
            .unwrap();
        assert_eq!(
            flow,
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
        cached.retire_region(0);
        assert!(cached.view[0].is_empty());
        // Re-formation reinstalls.
        cached.install_region(0, &[1]);
        assert_eq!(cached.view[0].len(), 1);
    }

    #[test]
    fn installs_publish_new_tables_old_snapshots_survive() {
        let p = sample();
        let body = decode_block(&p, 1).unwrap();
        let mut cached = CachedBackend::new(p.len(), None);
        cached.on_translate(&p, &body);
        cached.install_region(0, &[1]);
        // A reader's snapshot taken before a retire keeps working.
        let snapshot = cached.chains.load();
        cached.retire_region(0);
        assert_eq!(snapshot[0].len(), 1, "old table untouched");
        assert!(cached.view[0].is_empty(), "new table published");
        assert!(
            !Arc::ptr_eq(&snapshot, &cached.view),
            "retire replaced the table wholesale"
        );
    }

    #[test]
    fn compiled_install_uses_the_provided_chain() {
        let p = sample();
        let body = decode_block(&p, 1).unwrap();
        let mut cached = CachedBackend::new(p.len(), None);
        // Worker-compiled chain: the backend's own cache never saw the
        // block, yet region execution works.
        let chain = vec![Arc::new(DecodedBlock::from_block(&p, &body))];
        cached.install_region_compiled(0, &[1], chain);
        assert_eq!(cached.cached_blocks(), 0);
        let mut m = Machine::new(&p, &[]);
        let flow = cached
            .exec_block(
                &p,
                body.start,
                body.end,
                ExecSite::Region { region: 0, copy: 0 },
                &mut m,
            )
            .unwrap();
        assert!(matches!(flow, Flow::Jump { .. }));
        // A length-mismatched chain falls back to cache resolution.
        cached.on_translate(&p, &body);
        cached.install_region_compiled(1, &[1], Vec::new());
        assert_eq!(cached.view[1].len(), 1);
    }

    #[test]
    fn backends_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InterpBackend>();
        assert_send_sync::<CachedBackend>();
        assert_send_sync::<BackendImpl>();
    }
}
