//! Pluggable execution backends: how translated guest code actually
//! runs.
//!
//! The engine in [`crate::engine`] owns *when* things happen — block
//! discovery, counter bumps, threshold registration, region formation,
//! freezing — while an [`ExecBackend`] owns *how* a translated block's
//! instructions execute. Three backends are provided:
//!
//! * [`InterpBackend`] — the reference backend: per-instruction
//!   dispatch through [`tpdbt_vm::step`], exactly the execution model
//!   the engine used before backends existed.
//! * [`CachedBackend`] — a pre-decoded translation cache: each block
//!   is decoded once at translation time into a
//!   [`tpdbt_isa::DecodedBlock`] (a flat micro-op buffer plus a
//!   pre-resolved terminator) and every later execution replays the
//!   buffer through [`tpdbt_vm::exec_body`] / [`tpdbt_vm::exec_term`].
//!   Optimized regions additionally get direct block-to-successor
//!   chaining: at region-install time the copies are resolved to their
//!   decoded bodies, so region execution never consults the per-pc
//!   cache.
//! * **`cached-fused`** (the cached backend with fusion enabled, see
//!   [`CachedBackend::new_fused`]) — at region install the copies are
//!   additionally re-encoded as [`tpdbt_isa::FusedOp`]
//!   superinstructions and the whole region is compiled into a
//!   straight-line [`CompiledTrace`] along its profiled edges, which
//!   the engine executes through guard ops with side exits falling
//!   back to per-block execution (see [`crate::trace`]).
//!
//! All backends drive the same execute-half semantics in `tpdbt-vm`,
//! so architectural state, outputs, and every profile counter are
//! bitwise identical by construction — the differential proptest in
//! `tests/backend_differential.rs` pins this.

use std::sync::Arc;

use tpdbt_isa::{Block, DecodedBlock, Pc, PredecodedProgram, Program};
use tpdbt_optimizer::SwapCell;
use tpdbt_profile::RegionDump;
use tpdbt_vm::{exec_body, exec_term, step, Flow, Machine, VmError};

use crate::trace::{compile_trace, CompiledTrace};

/// One region's installed optimized code: the copies resolved to
/// decoded bodies, plus — under the `cached-fused` backend — the
/// compiled straight-line trace. Chain and trace live in the same slot
/// so installs, re-formations, and retirements replace or clear both
/// in a single atomic table publication: no reader can ever observe a
/// fresh chain with a stale trace (or vice versa).
#[derive(Clone, Debug, Default)]
pub struct RegionCode {
    /// Per-copy decoded bodies (fused under `cached-fused`), entry
    /// first.
    pub chain: Vec<Arc<DecodedBlock>>,
    /// The region's straight-line trace (`cached-fused` only).
    pub trace: Option<Arc<CompiledTrace>>,
}

impl RegionCode {
    /// Whether the slot holds no optimized code (cleared / never
    /// installed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty() && self.trace.is_none()
    }
}

/// The region table: one [`RegionCode`] slot per region id. Published
/// wholesale (see [`CachedBackend`]), never mutated in place.
pub type ChainTable = Vec<RegionCode>;

/// Which execution backend runs translated code — the user-facing
/// selection knob (`--backend {interp,cached,cached-fused}` on every
/// binary).
///
/// The backend never changes a run's observable results (profiles,
/// outputs, stats, simulated cycles) — only how fast the host executes
/// the guest — so it is deliberately excluded from
/// [`crate::DbtConfig::fingerprint`] and all backends share
/// profile-store cache entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Reference per-instruction interpreter dispatch.
    Interp,
    /// Pre-decoded translation cache (the default).
    #[default]
    Cached,
    /// The translation cache plus superinstruction fusion and
    /// trace-compiled regions.
    CachedFused,
}

impl Backend {
    /// All backends, for test matrices.
    pub const ALL: [Backend; 3] = [Backend::Interp, Backend::Cached, Backend::CachedFused];

    /// The flag-value name (`"interp"` / `"cached"` / `"cached-fused"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Cached => "cached",
            Backend::CachedFused => "cached-fused",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(Backend::Interp),
            "cached" => Ok(Backend::Cached),
            "cached-fused" => Ok(Backend::CachedFused),
            other => Err(format!(
                "unknown backend '{other}' (expected 'interp', 'cached', or 'cached-fused')"
            )),
        }
    }
}

/// Where a block execution was dispatched from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecSite {
    /// Profiling-phase (unoptimized) dispatch.
    Unopt,
    /// Copy `copy` of optimized region `region`.
    Region {
        /// Region id (index into the engine's region table).
        region: usize,
        /// Copy index within the region.
        copy: usize,
    },
}

/// How translated code executes. Implementations must be semantically
/// transparent: for any block, [`ExecBackend::exec_block`] must effect
/// exactly the architectural-state transition and [`Flow`] that
/// per-instruction [`tpdbt_vm::step`] dispatch would, including trap
/// payloads.
///
/// The engine reports translation-cache lifecycle events through the
/// remaining hooks: [`ExecBackend::on_translate`] at fast-translation
/// (cache insert), [`ExecBackend::install_region`] at region formation
/// *and* re-formation (optimized-code insert / replace), and
/// [`ExecBackend::retire_region`] at adaptive retirement (optimized-code
/// invalidation). Install hooks receive the full [`RegionDump`] — the
/// copy list plus the internal edge table — because trace compilation
/// needs the region's shape, not just its members.
pub trait ExecBackend {
    /// The block at `block.start` was fast-translated.
    fn on_translate(&mut self, program: &Program, block: &Block) {
        let _ = (program, block);
    }

    /// Region `region` was formed or re-formed; `dump` describes its
    /// copies (entry first) and internal edges.
    fn install_region(&mut self, region: usize, dump: &RegionDump) {
        let _ = (region, dump);
    }

    /// Region `region` was formed on a background optimizer thread and
    /// arrives with its copies already compiled (`chain`, parallel to
    /// `dump.copies`) and, when the worker fuses, its trace. The
    /// default delegates to [`ExecBackend::install_region`] — backends
    /// without a translation cache ignore the compiled artifacts.
    fn install_region_compiled(
        &mut self,
        region: usize,
        dump: &RegionDump,
        chain: Vec<Arc<DecodedBlock>>,
        trace: Option<Arc<CompiledTrace>>,
    ) {
        let _ = (chain, trace);
        self.install_region(region, dump);
    }

    /// Region `region` was retired: its optimized code must never run
    /// again.
    fn retire_region(&mut self, region: usize) {
        let _ = region;
    }

    /// The compiled trace installed for `region`, if this backend
    /// compiles traces and one is currently installed. The engine
    /// snapshots it (an [`Arc`] clone) per region entry, so a
    /// mid-execution retire or reform can swap the table without
    /// tearing the running trace.
    fn region_trace(&self, region: usize) -> Option<Arc<CompiledTrace>> {
        let _ = region;
        None
    }

    /// Executes the translated block spanning `[start, end)`, returning
    /// the terminator's control flow.
    ///
    /// # Errors
    ///
    /// Propagates guest traps ([`VmError`]) exactly as interpretation
    /// of the same instructions would.
    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError>;
}

/// The reference backend: per-instruction dispatch through
/// [`tpdbt_vm::step`], byte-for-byte the execution model the engine
/// used before the translation cache existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpBackend;

impl InterpBackend {
    /// Creates the reference backend.
    #[must_use]
    pub fn new() -> InterpBackend {
        InterpBackend
    }
}

impl ExecBackend for InterpBackend {
    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        _site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError> {
        let mut flow = Flow::Halted;
        for at in start..end {
            machine.set_pc(at);
            flow = step(program, machine)?;
            if matches!(flow, Flow::Halted) && at + 1 < end {
                unreachable!("halt only terminates blocks");
            }
        }
        Ok(flow)
    }
}

/// Replays a decoded block's body (flat or fused) and terminator.
/// After a successful block the machine PC rests on the terminator,
/// matching the interpreter backend's final state exactly.
fn run_decoded(block: &DecodedBlock, machine: &mut Machine) -> Result<Flow, VmError> {
    exec_body(&block.body, block.start, machine)?;
    let pc = block.term_pc();
    machine.set_pc(pc);
    exec_term(block.term.view(), pc, machine)
}

/// The pre-decoded translation cache (with optional superinstruction
/// fusion).
///
/// Blocks are decoded exactly once — at fast-translation time — into
/// [`DecodedBlock`]s; optionally a shared [`PredecodedProgram`] makes
/// that a once-per-*guest* cost across runs and threads (sweep ladder
/// cells, serve queries) instead of once per run.
///
/// The region table lives behind a [`SwapCell`]: installs and
/// retirements build a *new* table and publish it in one atomic swap,
/// while the execution thread reads through a private [`Arc`] snapshot
/// refreshed at each publication point. This is what makes the
/// background optimizer's install genuinely atomic — no reader can
/// observe a half-written chain, or a trace out of step with its chain
/// — and keeps the backend `Send + Sync` clean behind the
/// `ExecBackend` seam.
///
/// With fusion enabled ([`CachedBackend::new_fused`], the
/// `cached-fused` backend), every translated block's body is re-encoded
/// as [`tpdbt_isa::FusedOp`] superinstructions at translate time, and
/// region installs additionally compile the region into a
/// [`CompiledTrace`] published in the same slot.
#[derive(Debug)]
pub struct CachedBackend {
    /// Cross-run shared decode cache, when the driver provided one.
    shared: Option<Arc<PredecodedProgram>>,
    /// The translation cache proper: decoded block per start address.
    blocks: Vec<Option<Arc<DecodedBlock>>>,
    /// Publication handle for the region table. Cleared slots on
    /// retirement, replaced wholesale on (re-)installation.
    chains: SwapCell<ChainTable>,
    /// The execution thread's snapshot of `chains` (plain `Arc` deref
    /// on the hot path; refreshed after every publish).
    view: Arc<ChainTable>,
    /// Whether region installs fuse bodies and compile traces (the
    /// `cached-fused` backend).
    fuse: bool,
}

impl CachedBackend {
    /// Creates a translation cache for a program of `program_len`
    /// instructions. When `shared` is given (and sized for the same
    /// program), decoded blocks are pulled from — and published to —
    /// it, so concurrent and successive runs of the same guest decode
    /// each block only once globally.
    #[must_use]
    pub fn new(program_len: usize, shared: Option<Arc<PredecodedProgram>>) -> CachedBackend {
        let shared = shared.filter(|p| p.len() == program_len);
        let view: Arc<ChainTable> = Arc::new(Vec::new());
        CachedBackend {
            shared,
            blocks: vec![None; program_len],
            chains: SwapCell::from_arc(Arc::clone(&view)),
            view,
            fuse: false,
        }
    }

    /// Creates the `cached-fused` variant: translated blocks run as
    /// superinstructions from first execution, and region installs
    /// additionally compile straight-line traces.
    #[must_use]
    pub fn new_fused(program_len: usize, shared: Option<Arc<PredecodedProgram>>) -> CachedBackend {
        let mut b = CachedBackend::new(program_len, shared);
        b.fuse = true;
        b
    }

    /// Number of blocks currently in the translation cache.
    #[must_use]
    pub fn cached_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// The currently installed code for `region` (test observability;
    /// the engine reads through [`ExecBackend::region_trace`] and
    /// [`ExecBackend::exec_block`]).
    #[must_use]
    pub fn region_code(&self, region: usize) -> Option<&RegionCode> {
        self.view.get(region)
    }

    /// Publishes an updated region table and refreshes the local view.
    fn publish(&mut self, table: ChainTable) {
        let table = Arc::new(table);
        self.chains.store(Arc::clone(&table));
        self.view = table;
    }

    /// Copy-on-write slot update: clone the current table, replace
    /// `region`'s code, publish. Chain and trace change together —
    /// this is the single point where optimized code becomes (or stops
    /// being) visible.
    fn install_code(&mut self, region: usize, code: RegionCode) {
        let mut table = (*self.view).clone();
        if table.len() <= region {
            table.resize_with(region + 1, RegionCode::default);
        }
        table[region] = code;
        self.publish(table);
    }

    /// Builds the install payload: the resolved (and, under fusion,
    /// fused) chain plus the compiled trace.
    fn compile_region(&self, dump: &RegionDump, chain: Vec<Arc<DecodedBlock>>) -> RegionCode {
        if !self.fuse {
            return RegionCode { chain, trace: None };
        }
        let chain: Vec<Arc<DecodedBlock>> = chain.iter().map(|b| Arc::new(b.fused())).collect();
        let trace = compile_trace(&dump.copies, &dump.edges, &chain).map(Arc::new);
        RegionCode { chain, trace }
    }
}

impl ExecBackend for CachedBackend {
    fn on_translate(&mut self, program: &Program, block: &Block) {
        let pc = block.start;
        if self.blocks[pc].is_some() {
            return;
        }
        let decoded = match &self.shared {
            Some(cache) => cache.block(program, pc),
            None => Some(Arc::new(DecodedBlock::from_block(program, block))),
        };
        // Under the fused backend every translated block runs as
        // superinstructions, profiling phase included — fusion is
        // architecturally invisible (pinned by
        // `crates/vm/tests/fusion_props.rs`), so only dispatch cost
        // changes. `fused()` is idempotent, so region installs that
        // re-fuse these bodies are no-ops.
        let decoded = match decoded {
            Some(b) if self.fuse => Some(Arc::new(b.fused())),
            other => other,
        };
        self.blocks[pc] = decoded;
    }

    fn install_region(&mut self, region: usize, dump: &RegionDump) {
        let chain: Vec<Arc<DecodedBlock>> = dump
            .copies
            .iter()
            .map(|&pc| {
                Arc::clone(
                    self.blocks[pc]
                        .as_ref()
                        .expect("region members are translated before formation"),
                )
            })
            .collect();
        let code = self.compile_region(dump, chain);
        self.install_code(region, code);
    }

    fn install_region_compiled(
        &mut self,
        region: usize,
        dump: &RegionDump,
        chain: Vec<Arc<DecodedBlock>>,
        trace: Option<Arc<CompiledTrace>>,
    ) {
        if chain.len() != dump.copies.len() {
            // A worker that could not resolve every copy falls back to
            // the engine-thread resolution path.
            self.install_region(region, dump);
            return;
        }
        let code = if self.fuse {
            match trace {
                // Worker pre-fused the chain and compiled the trace.
                Some(trace) => RegionCode {
                    chain,
                    trace: Some(trace),
                },
                // Defensive: fuse and compile on the engine thread.
                None => self.compile_region(dump, chain),
            }
        } else {
            RegionCode { chain, trace: None }
        };
        self.install_code(region, code);
    }

    fn retire_region(&mut self, region: usize) {
        if self.view.get(region).is_some_and(|c| !c.is_empty()) {
            let mut table = (*self.view).clone();
            table[region] = RegionCode::default();
            self.publish(table);
        }
    }

    fn region_trace(&self, region: usize) -> Option<Arc<CompiledTrace>> {
        self.view.get(region).and_then(|c| c.trace.clone())
    }

    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError> {
        if let ExecSite::Region { region, copy } = site {
            if let Some(block) = self.view.get(region).and_then(|c| c.chain.get(copy)) {
                return run_decoded(block, machine);
            }
        }
        if self.blocks[start].is_none() {
            // Defensive: the engine always translates before executing,
            // but a standalone user of the backend may not.
            self.blocks[start] = match &self.shared {
                Some(cache) => cache.block(program, start),
                None => DecodedBlock::decode(program, start).map(Arc::new),
            };
        }
        let block = self.blocks[start]
            .as_ref()
            .ok_or(VmError::BadPc { pc: start })?;
        debug_assert_eq!((block.start, block.end), (start, end));
        let _ = end;
        run_decoded(block, machine)
    }
}

/// Static dispatch over the built-in backends (keeps the engine's
/// hot loop free of virtual calls). `cached-fused` is the cached
/// backend with its fusion flag set.
#[derive(Debug)]
pub(crate) enum BackendImpl {
    Interp(InterpBackend),
    Cached(CachedBackend),
}

impl BackendImpl {
    pub(crate) fn new(
        backend: Backend,
        program: &Program,
        shared: Option<Arc<PredecodedProgram>>,
    ) -> BackendImpl {
        match backend {
            Backend::Interp => BackendImpl::Interp(InterpBackend::new()),
            Backend::Cached => BackendImpl::Cached(CachedBackend::new(program.len(), shared)),
            Backend::CachedFused => {
                BackendImpl::Cached(CachedBackend::new_fused(program.len(), shared))
            }
        }
    }
}

impl ExecBackend for BackendImpl {
    fn on_translate(&mut self, program: &Program, block: &Block) {
        match self {
            BackendImpl::Interp(b) => b.on_translate(program, block),
            BackendImpl::Cached(b) => b.on_translate(program, block),
        }
    }

    fn install_region(&mut self, region: usize, dump: &RegionDump) {
        match self {
            BackendImpl::Interp(b) => b.install_region(region, dump),
            BackendImpl::Cached(b) => b.install_region(region, dump),
        }
    }

    fn install_region_compiled(
        &mut self,
        region: usize,
        dump: &RegionDump,
        chain: Vec<Arc<DecodedBlock>>,
        trace: Option<Arc<CompiledTrace>>,
    ) {
        match self {
            BackendImpl::Interp(b) => b.install_region_compiled(region, dump, chain, trace),
            BackendImpl::Cached(b) => b.install_region_compiled(region, dump, chain, trace),
        }
    }

    fn retire_region(&mut self, region: usize) {
        match self {
            BackendImpl::Interp(b) => b.retire_region(region),
            BackendImpl::Cached(b) => b.retire_region(region),
        }
    }

    fn region_trace(&self, region: usize) -> Option<Arc<CompiledTrace>> {
        match self {
            BackendImpl::Interp(b) => b.region_trace(region),
            BackendImpl::Cached(b) => b.region_trace(region),
        }
    }

    fn exec_block(
        &mut self,
        program: &Program,
        start: Pc,
        end: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<Flow, VmError> {
        match self {
            BackendImpl::Interp(b) => b.exec_block(program, start, end, site, machine),
            BackendImpl::Cached(b) => b.exec_block(program, start, end, site, machine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_isa::{decode_block, Cond, ProgramBuilder, Reg};
    use tpdbt_profile::{RegionEdge, RegionKind, SuccSlot};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.reserve_mem(8);
        let top = b.fresh_label("top");
        b.movi(Reg::new(1), 3); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 5); // 1
        b.store(Reg::new(0), Reg::new(1), 0); // 2
        b.out(Reg::new(0)); // 3
        b.br_imm(Cond::Lt, Reg::new(0), 20, top); // 4
        b.halt(); // 5
        b.build().unwrap()
    }

    /// A loop-shaped region dump over copies of the interior block.
    fn loop_dump(copies: Vec<Pc>) -> RegionDump {
        let edges = (0..copies.len())
            .map(|i| RegionEdge {
                from: i,
                slot: SuccSlot::Taken,
                to: if i + 1 < copies.len() { i + 1 } else { 0 },
            })
            .collect();
        let tail = copies.len() - 1;
        RegionDump {
            id: 0,
            kind: RegionKind::Loop,
            copies,
            edges,
            tail,
        }
    }

    #[test]
    fn backend_flag_round_trips() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("jit".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Cached);
    }

    #[test]
    fn both_backends_step_a_block_identically() {
        let p = sample();
        let block = decode_block(&p, 0).unwrap();
        let mut interp = InterpBackend::new();
        let mut cached = CachedBackend::new(p.len(), None);
        cached.on_translate(&p, &block);
        assert_eq!(cached.cached_blocks(), 1);

        let mut mi = Machine::new(&p, &[]);
        let mut mc = mi.clone();
        let fi = interp
            .exec_block(&p, block.start, block.end, ExecSite::Unopt, &mut mi)
            .unwrap();
        let fc = cached
            .exec_block(&p, block.start, block.end, ExecSite::Unopt, &mut mc)
            .unwrap();
        assert_eq!(fi, fc);
        assert_eq!(mi, mc, "architectural state must be bitwise identical");
    }

    #[test]
    fn shared_predecode_is_published_across_backends() {
        let p = sample();
        let shared = Arc::new(PredecodedProgram::new(&p));
        let block = decode_block(&p, 0).unwrap();
        let mut first = CachedBackend::new(p.len(), Some(Arc::clone(&shared)));
        first.on_translate(&p, &block);
        assert_eq!(shared.decoded_count(), 1);
        // A second run of the same guest reuses the decode.
        let mut second = CachedBackend::new(p.len(), Some(Arc::clone(&shared)));
        second.on_translate(&p, &block);
        assert_eq!(shared.decoded_count(), 1);
        let a = first.blocks[0].as_ref().unwrap();
        let b = second.blocks[0].as_ref().unwrap();
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn mismatched_shared_cache_is_ignored() {
        let p = sample();
        let mut other = ProgramBuilder::new();
        other.halt();
        let tiny = other.build().unwrap();
        let shared = Arc::new(PredecodedProgram::new(&tiny));
        let backend = CachedBackend::new(p.len(), Some(shared));
        assert!(backend.shared.is_none());
    }

    #[test]
    fn region_chains_install_and_retire() {
        let p = sample();
        let entry = decode_block(&p, 0).unwrap();
        let body = decode_block(&p, 1).unwrap();
        let mut cached = CachedBackend::new(p.len(), None);
        cached.on_translate(&p, &entry);
        cached.on_translate(&p, &body);
        cached.install_region(0, &loop_dump(vec![1, 1]));
        assert_eq!(cached.view[0].chain.len(), 2);
        assert!(cached.view[0].trace.is_none(), "plain cached never traces");
        // Region execution uses the chain directly.
        let mut m = Machine::new(&p, &[]);
        let flow = cached
            .exec_block(
                &p,
                body.start,
                body.end,
                ExecSite::Region { region: 0, copy: 1 },
                &mut m,
            )
            .unwrap();
        assert_eq!(
            flow,
            Flow::Jump {
                target: 1,
                taken: true
            }
        );
        cached.retire_region(0);
        assert!(cached.view[0].is_empty());
        // Re-formation reinstalls.
        cached.install_region(0, &loop_dump(vec![1]));
        assert_eq!(cached.view[0].chain.len(), 1);
    }

    #[test]
    fn installs_publish_new_tables_old_snapshots_survive() {
        let p = sample();
        let body = decode_block(&p, 1).unwrap();
        let mut cached = CachedBackend::new(p.len(), None);
        cached.on_translate(&p, &body);
        cached.install_region(0, &loop_dump(vec![1]));
        // A reader's snapshot taken before a retire keeps working.
        let snapshot = cached.chains.load();
        cached.retire_region(0);
        assert_eq!(snapshot[0].chain.len(), 1, "old table untouched");
        assert!(cached.view[0].is_empty(), "new table published");
        assert!(
            !Arc::ptr_eq(&snapshot, &cached.view),
            "retire replaced the table wholesale"
        );
    }

    #[test]
    fn compiled_install_uses_the_provided_chain() {
        let p = sample();
        let body = decode_block(&p, 1).unwrap();
        let mut cached = CachedBackend::new(p.len(), None);
        // Worker-compiled chain: the backend's own cache never saw the
        // block, yet region execution works.
        let chain = vec![Arc::new(DecodedBlock::from_block(&p, &body))];
        cached.install_region_compiled(0, &loop_dump(vec![1]), chain, None);
        assert_eq!(cached.cached_blocks(), 0);
        let mut m = Machine::new(&p, &[]);
        let flow = cached
            .exec_block(
                &p,
                body.start,
                body.end,
                ExecSite::Region { region: 0, copy: 0 },
                &mut m,
            )
            .unwrap();
        assert!(matches!(flow, Flow::Jump { .. }));
        // A length-mismatched chain falls back to cache resolution.
        cached.on_translate(&p, &body);
        cached.install_region_compiled(1, &loop_dump(vec![1]), Vec::new(), None);
        assert_eq!(cached.view[1].chain.len(), 1);
    }

    /// The fused backend installs a fused chain *and* a trace in one
    /// slot, and retirement / re-formation replaces both atomically —
    /// the stale-trace regression surface.
    #[test]
    fn fused_install_compiles_trace_and_retire_drops_it_atomically() {
        let p = sample();
        let entry = decode_block(&p, 0).unwrap();
        let body = decode_block(&p, 1).unwrap();
        let mut fused = CachedBackend::new_fused(p.len(), None);
        fused.on_translate(&p, &entry);
        fused.on_translate(&p, &body);
        fused.install_region(0, &loop_dump(vec![1]));
        let trace = fused.region_trace(0).expect("fused install compiles");
        assert_eq!(trace.starts(), vec![1]);
        // The chain bodies were re-encoded as superinstructions.
        assert!(matches!(
            fused.view[0].chain[0].body,
            tpdbt_isa::BlockBody::Fused(_)
        ));

        // A reader mid-execution holds its own snapshot...
        let snapshot = fused.chains.load();
        // ...while a re-formation swaps chain and trace together.
        fused.install_region(0, &loop_dump(vec![1, 1]));
        let reformed = fused.region_trace(0).expect("reinstalled");
        assert_eq!(reformed.starts(), vec![1, 1], "trace tracks the new shape");
        assert_eq!(snapshot[0].chain.len(), 1, "old snapshot untouched");
        assert_eq!(
            snapshot[0].trace.as_ref().unwrap().len(),
            1,
            "old snapshot keeps its matching trace"
        );

        // Retirement clears both in one publication.
        fused.retire_region(0);
        assert!(fused.region_trace(0).is_none(), "no stale trace");
        assert!(fused.view[0].is_empty(), "no stale chain");
    }

    /// Fused and plain cached region execution compute the same
    /// machine state (the backend-level slice of the differential
    /// guarantee).
    #[test]
    fn fused_region_execution_matches_plain_cached() {
        let p = sample();
        let body = decode_block(&p, 1).unwrap();
        let mut plain = CachedBackend::new(p.len(), None);
        let mut fused = CachedBackend::new_fused(p.len(), None);
        for b in [&mut plain, &mut fused] {
            b.on_translate(&p, &body);
            b.install_region(0, &loop_dump(vec![1]));
        }
        let mut mp = Machine::new(&p, &[]);
        let mut mf = mp.clone();
        let site = ExecSite::Region { region: 0, copy: 0 };
        let fp = plain
            .exec_block(&p, body.start, body.end, site, &mut mp)
            .unwrap();
        let ff = fused
            .exec_block(&p, body.start, body.end, site, &mut mf)
            .unwrap();
        assert_eq!(fp, ff);
        assert_eq!(mp, mf, "fusion must be architecturally invisible");
    }

    #[test]
    fn backends_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InterpBackend>();
        assert_send_sync::<CachedBackend>();
        assert_send_sync::<BackendImpl>();
    }
}
