//! The translator's execution engine: profiling-phase execution,
//! candidate pool, optimization trigger, and optimized region execution.

use std::sync::Arc;

use tpdbt_isa::{decode_block, Block, BuiltProgram, Pc, PredecodedProgram, Program, Terminator};
use tpdbt_profile::{
    BlockRecord, InipDump, IntervalProfile, PlainProfile, RegionDump, RegionKind, SuccSlot,
    TermKind,
};
use tpdbt_trace::{EventKind, TraceRegionKind, Tracer};
use tpdbt_vm::{exec_body, exec_term, Flow, Machine};

use crate::asyncopt::{snapshot_neighborhood, AsyncOpt, OptJob, OptOutcome};
use crate::backend::{Backend, BackendImpl, ExecBackend, ExecSite};
use crate::config::{DbtConfig, OptMode, ProfilingMode};
use crate::error::DbtError;
use crate::region::{form_region, BlockSource, FormedRegion};
use crate::trace::{CompiledTrace, EXIT};

/// Aggregate statistics of a translated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic guest instructions executed.
    pub instructions: u64,
    /// Simulated cycles under the cost model.
    pub cycles: u64,
    /// Profiling operations (use + taken counter increments) — the
    /// paper's Figure 18 quantity.
    pub profiling_ops: u64,
    /// Distinct blocks fast-translated.
    pub blocks_translated: u64,
    /// Regions formed by the optimization phase.
    pub regions_formed: u64,
    /// Times the optimization phase ran.
    pub opt_invocations: u64,
    /// Region executions that left through a side exit.
    pub side_exits: u64,
    /// Region executions that completed through the tail block.
    pub completions: u64,
    /// Loop-region back-edge traversals.
    pub loop_backs: u64,
    /// Optimized-region entries.
    pub region_entries: u64,
    /// Regions retired by adaptive side-exit monitoring
    /// ([`ProfilingMode::Adaptive`]).
    pub retirements: u64,
    /// Candidates handed to the background optimizer
    /// ([`OptMode::Async`]; always 0 in sync mode). Counts queue-full
    /// rejections too, so `opt_enqueued == opt_installed +
    /// opt_discarded` holds at end of run.
    pub opt_enqueued: u64,
    /// Background-formed regions that passed epoch validation and were
    /// installed (async mode; 0 in sync).
    pub opt_installed: u64,
    /// Background candidates discarded instead of installed: stale
    /// snapshot, entry already covered, formation failure, or a full
    /// queue at submission (async mode; 0 in sync).
    pub opt_discarded: u64,
    /// Highest observed optimizer service depth, queued + in flight
    /// (async mode; 0 in sync).
    pub opt_queue_peak: u64,
}

/// The result of running a program under the translator.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The profile dump — `INIP(T)` in two-phase mode, a plain whole-run
    /// profile (with no regions) in [`ProfilingMode::NoOpt`].
    pub inip: InipDump,
    /// Guest program output.
    pub output: Vec<i64>,
    /// Run statistics.
    pub stats: ExecStats,
    /// Interval profile snapshots, when [`DbtConfig::interval`] was
    /// set (input to offline phase detection).
    pub intervals: Vec<IntervalProfile>,
    /// Profile-drift sample points from asynchronous installs — one
    /// `(p_enqueue, p_install, use_install)` triple per conditional
    /// member of each installed region, feeding the `Sd.IP` metric
    /// (`tpdbt_profile::metrics::sd_ip`). Empty in [`OptMode::Sync`].
    pub drift: Vec<(f64, f64, f64)>,
}

impl RunOutcome {
    /// Views the dump as a plain profile (`AVEP` / `INIP(train)`
    /// shape). Meaningful for [`ProfilingMode::NoOpt`] runs, where no
    /// counters were frozen; callable on any run.
    #[must_use]
    pub fn as_plain_profile(&self) -> PlainProfile {
        PlainProfile {
            blocks: self.inip.blocks.clone(),
            entry: self.inip.entry,
            profiling_ops: self.inip.profiling_ops,
            instructions: self.inip.instructions,
        }
    }
}

/// One translated block plus its live profile state.
#[derive(Debug)]
struct BlockEntry {
    block: Block,
    record: BlockRecord,
    frozen: bool,
    /// 0 = unregistered, 1 = registered at `use == T`,
    /// 2 = registered twice (`use == 2T`).
    registered: u8,
    /// Region dispatched from this pc, if it is a region entry.
    entry_of: Option<usize>,
    /// First-occurrence order of dynamic return targets (stable slot
    /// numbering for `ret` edges).
    ret_targets: Vec<Pc>,
    /// For switch terminators: the deduplicated, sorted target table,
    /// computed once at translation time (stable static slot numbering
    /// without a per-execution sort).
    switch_uniq: Box<[Pc]>,
}

/// A formed region prepared for execution.
#[derive(Debug)]
struct RuntimeRegion {
    dump: RegionDump,
    /// Per-copy successor table: `(slot, next copy)`.
    succ: Vec<Vec<(SuccSlot, usize)>>,
    /// Entry-block use count at formation time (continuous-mode
    /// staleness check).
    formed_use: u64,
    /// Region entries since formation (adaptive monitoring).
    entries: u64,
    /// Side exits since formation (adaptive monitoring).
    side_exits: u64,
    /// Retired by adaptive monitoring: never dispatched again and
    /// excluded from the final dump.
    retired: bool,
}

impl RuntimeRegion {
    fn new(formed: FormedRegion, id: usize, formed_use: u64) -> Self {
        let dump = formed.into_dump(id);
        let mut succ = vec![Vec::new(); dump.copies.len()];
        for e in &dump.edges {
            succ[e.from].push((e.slot, e.to));
        }
        RuntimeRegion {
            dump,
            succ,
            formed_use,
            entries: 0,
            side_exits: 0,
            retired: false,
        }
    }
}

fn trace_region_kind(kind: RegionKind) -> TraceRegionKind {
    match kind {
        RegionKind::Trace => TraceRegionKind::Trace,
        RegionKind::Loop => TraceRegionKind::Loop,
    }
}

/// Continuous-mode staleness test: has `current_use` at least doubled
/// relative to `formed_use`?
///
/// `current_use / 2 >= formed_use` is exactly `current_use >= 2 *
/// formed_use` for every `u64` pair, without the overflow that made the
/// multiplying form (`formed_use.saturating_mul(2)`) treat a region
/// formed past `u64::MAX / 2` uses as due the moment the counter
/// saturated the comparison.
fn reform_due(current_use: u64, formed_use: u64) -> bool {
    current_use / 2 >= formed_use
}

fn term_kind(t: &Terminator) -> TermKind {
    match t {
        Terminator::Jump { .. } => TermKind::Jump,
        Terminator::Branch { .. } => TermKind::Cond,
        Terminator::Switch { .. } => TermKind::Switch,
        Terminator::Call { .. } => TermKind::Call,
        Terminator::Return => TermKind::Return,
        Terminator::Halt => TermKind::Halt,
    }
}

/// The two-phase dynamic binary translator.
///
/// See the [crate documentation](crate) for the architecture and an
/// example.
#[derive(Clone, Debug)]
pub struct Dbt {
    config: DbtConfig,
    tracer: Option<Arc<Tracer>>,
    predecoded: Option<Arc<PredecodedProgram>>,
}

impl Dbt {
    /// Creates a translator with the given configuration.
    #[must_use]
    pub fn new(config: DbtConfig) -> Self {
        Dbt {
            config,
            tracer: None,
            predecoded: None,
        }
    }

    /// Attaches a structured-event tracer: every run reports lifecycle
    /// events (translation, counter bumps and freezes, region
    /// formation / re-formation / retirement) into it. Without the
    /// crate's `trace` feature this is a no-op.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Shares a pre-decoded block cache across runs of the same
    /// program. Only consulted by the [`crate::Backend::Cached`]
    /// backend; it must have been created (via
    /// [`PredecodedProgram::new`]) for the exact program later passed
    /// to [`Dbt::run`], otherwise it is silently ignored. Sweeps hand
    /// one cache to every ladder cell of a guest so each block is
    /// decoded once per guest instead of once per cell.
    #[must_use]
    pub fn with_predecoded(mut self, predecoded: Arc<PredecodedProgram>) -> Self {
        self.predecoded = Some(predecoded);
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DbtConfig {
        &self.config
    }

    /// Runs `program` on `input` under the translator.
    ///
    /// # Errors
    ///
    /// Returns [`DbtError::Guest`] when the guest program traps
    /// (including fuel exhaustion).
    pub fn run(&self, program: &Program, input: &[i64]) -> Result<RunOutcome, DbtError> {
        let mut machine = Machine::new(program, input);
        self.run_machine(program, &mut machine)
    }

    /// Runs a built program (with preloaded data sections) on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`DbtError::Guest`] when the guest program traps.
    pub fn run_built(&self, built: &BuiltProgram, input: &[i64]) -> Result<RunOutcome, DbtError> {
        let mut machine = Machine::new(&built.program, input);
        machine.preload(&built.mem_image, &built.fmem_image);
        self.run_machine(&built.program, &mut machine)
    }

    fn run_machine(
        &self,
        program: &Program,
        machine: &mut Machine,
    ) -> Result<RunOutcome, DbtError> {
        let wants_async =
            self.config.opt_mode == OptMode::Async && self.config.mode != ProfilingMode::NoOpt;
        // Async workers pre-compile region copies, so they need a
        // thread-safe decode cache; share it with the backend so
        // neither side decodes a block twice.
        let predecoded = match (wants_async, self.predecoded.clone()) {
            (_, Some(shared)) if shared.len() == program.len() => Some(shared),
            (true, _) => Some(Arc::new(PredecodedProgram::new(program))),
            (false, other) => other,
        };
        let asyncopt = wants_async.then(|| {
            AsyncOpt::new(
                self.config.opt_workers,
                Arc::new(program.clone()),
                predecoded.clone().expect("built above for async"),
                self.config.backend == Backend::CachedFused,
                self.tracer.clone(),
            )
        });
        let mut engine = Engine {
            config: &self.config,
            tracer: self.tracer.as_deref(),
            program,
            backend: BackendImpl::new(self.config.backend, program, predecoded),
            cache: (0..program.len()).map(|_| None).collect(),
            regions: Vec::new(),
            pool: Vec::new(),
            asyncopt,
            stats: ExecStats::default(),
            intervals: Vec::new(),
            last_snapshot: std::collections::BTreeMap::new(),
            next_interval_at: self.config.interval.unwrap_or(u64::MAX),
            retire_counts: std::collections::BTreeMap::new(),
        };
        let output = engine.execute(machine)?;
        Ok(engine.into_outcome(output))
    }
}

struct Engine<'p> {
    config: &'p DbtConfig,
    tracer: Option<&'p Tracer>,
    program: &'p Program,
    backend: BackendImpl,
    cache: Vec<Option<Box<BlockEntry>>>,
    regions: Vec<RuntimeRegion>,
    pool: Vec<Pc>,
    /// Background-optimization state; `Some` iff [`OptMode::Async`] and
    /// the profiling mode can optimize.
    asyncopt: Option<AsyncOpt>,
    stats: ExecStats,
    intervals: Vec<IntervalProfile>,
    last_snapshot: std::collections::BTreeMap<Pc, (u64, u64)>,
    next_interval_at: u64,
    retire_counts: std::collections::BTreeMap<Pc, u32>,
}

/// Block-execution outcome handed back to the main loop.
enum Next {
    Goto(Pc),
    Halted,
}

impl<'p> BlockSource for Engine<'p> {
    fn terminator(&self, pc: Pc) -> Option<&Terminator> {
        self.cache.get(pc)?.as_ref().map(|e| &e.block.terminator)
    }
    fn record(&self, pc: Pc) -> Option<&BlockRecord> {
        self.cache.get(pc)?.as_ref().map(|e| &e.record)
    }
    fn block_len(&self, pc: Pc) -> Option<u32> {
        self.cache.get(pc)?.as_ref().map(|e| e.record.len)
    }
}

impl<'p> Engine<'p> {
    /// Reports a structured event when a tracer is attached; the
    /// closure defers payload construction to the traced case. With the
    /// `trace` feature off this compiles to nothing.
    #[cfg(feature = "trace")]
    #[inline]
    fn trace_emit(&self, event: impl FnOnce() -> EventKind) {
        if let Some(tracer) = self.tracer {
            tracer.emit(event());
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline]
    fn trace_emit(&self, event: impl FnOnce() -> EventKind) {
        let _ = (self.tracer, event);
    }

    fn execute(&mut self, machine: &mut Machine) -> Result<Vec<i64>, DbtError> {
        let mut pc = self.program.entry();
        loop {
            if self.stats.instructions >= self.config.fuel {
                return Err(DbtError::Guest(tpdbt_vm::VmError::OutOfFuel {
                    pc,
                    fuel: self.config.fuel,
                }));
            }
            // Async mode: apply finished background candidates between
            // guest blocks — installation is atomic w.r.t. execution.
            self.drain_async();
            // Optimized dispatch: region entry wins.
            let region_idx = self
                .cache
                .get(pc)
                .and_then(|e| e.as_ref())
                .and_then(|e| e.entry_of);
            let next = match region_idx {
                Some(ri) => {
                    self.maybe_reform(ri, pc);
                    // Trace-compiled fast path (cached-fused backend):
                    // snapshot the trace *after* any reform so it
                    // matches the region's current shape. Continuous
                    // mode stays on per-block execution — it must
                    // observe every block's flow to keep counting.
                    match self.backend.region_trace(ri) {
                        Some(trace) if self.config.mode != ProfilingMode::Continuous => {
                            self.execute_region_traced(ri, &trace, machine)?
                        }
                        _ => self.execute_region(ri, machine)?,
                    }
                }
                None => self.execute_unopt(pc, machine)?,
            };
            if self.stats.instructions >= self.next_interval_at {
                self.snapshot_interval();
            }
            match next {
                Next::Goto(target) => pc = target,
                Next::Halted => {
                    // Resolve every in-flight candidate so the run's
                    // books balance: enqueued == installed + discarded.
                    self.finish_async();
                    if self.config.interval.is_some() {
                        self.snapshot_interval();
                    }
                    return Ok(machine.output().to_vec());
                }
            }
        }
    }

    /// Records the per-branch deltas since the previous snapshot (phase
    /// detection input).
    fn snapshot_interval(&mut self) {
        let mut branches = std::collections::BTreeMap::new();
        for entry in self.cache.iter().flatten() {
            if entry.record.kind != Some(TermKind::Cond) {
                continue;
            }
            let pc = entry.block.start;
            let now = (entry.record.use_count, entry.record.taken_count());
            let prev = self.last_snapshot.insert(pc, now).unwrap_or((0, 0));
            let delta = (now.0 - prev.0, now.1 - prev.1);
            if delta.0 > 0 {
                branches.insert(pc, delta);
            }
        }
        if !branches.is_empty() {
            self.intervals.push(IntervalProfile {
                end_instructions: self.stats.instructions,
                branches,
            });
        }
        self.next_interval_at = self.stats.instructions + self.config.interval.unwrap_or(u64::MAX);
    }

    /// Ensures the block at `pc` is translated, charging the one-time
    /// fast-translation cost. This is the translation-cache insert: the
    /// backend decodes (or chains) the block here, once, and every
    /// later execution replays the cached form.
    fn translate(&mut self, pc: Pc) -> &mut BlockEntry {
        if self.cache[pc].is_none() {
            let block = decode_block(self.program, pc)
                .expect("pc validated by jump targets and program validation");
            let len = (block.end - block.start) as u32;
            self.stats.blocks_translated += 1;
            self.stats.cycles += self.config.cost.cold_translate_per_instr * u64::from(len);
            self.backend.on_translate(self.program, &block);
            let switch_uniq: Box<[Pc]> = match &block.terminator {
                Terminator::Switch { targets } => {
                    let mut uniq = targets.clone();
                    uniq.sort_unstable();
                    uniq.dedup();
                    uniq.into_boxed_slice()
                }
                _ => Box::default(),
            };
            let record = BlockRecord {
                len,
                kind: Some(term_kind(&block.terminator)),
                use_count: 0,
                edges: Vec::new(),
            };
            self.cache[pc] = Some(Box::new(BlockEntry {
                block,
                record,
                frozen: false,
                registered: 0,
                entry_of: None,
                ret_targets: Vec::new(),
                switch_uniq,
            }));
            self.trace_emit(|| EventKind::BlockTranslated { pc: pc as u64, len });
        }
        self.cache[pc].as_mut().expect("just inserted").as_mut()
    }

    /// Executes the straight-line body and terminator of the block at
    /// `pc` through the configured backend, returning the control-flow
    /// outcome. Shared by the profiling path and region execution
    /// (identical architectural semantics, different costs).
    fn step_block(
        &mut self,
        pc: Pc,
        site: ExecSite,
        machine: &mut Machine,
    ) -> Result<(Flow, u32), DbtError> {
        let (start, end) = {
            let e = self.cache[pc]
                .as_ref()
                .expect("block translated before execution");
            (e.block.start, e.block.end)
        };
        let flow = self
            .backend
            .exec_block(self.program, start, end, site, machine)?;
        let len = (end - start) as u32;
        self.stats.instructions += u64::from(len);
        Ok((flow, len))
    }

    /// Maps an executed terminator outcome to a successor slot and
    /// target.
    fn outcome(&mut self, pc: Pc, flow: &Flow) -> Option<(SuccSlot, Pc)> {
        let entry = self.cache[pc].as_mut().expect("block translated");
        match (&entry.block.terminator, flow) {
            (_, Flow::Halted) => None,
            (Terminator::Branch { .. }, Flow::Jump { target, .. }) => {
                Some((SuccSlot::Taken, *target))
            }
            (Terminator::Branch { fallthrough, .. }, Flow::Next) => {
                Some((SuccSlot::Fallthrough, *fallthrough))
            }
            (Terminator::Jump { .. } | Terminator::Call { .. }, Flow::Jump { target, .. }) => {
                Some((SuccSlot::Other(0), *target))
            }
            (Terminator::Switch { .. }, Flow::Jump { target, .. }) => {
                // Stable static slot: position among deduplicated,
                // sorted targets, pre-computed at translation time.
                let idx = entry
                    .switch_uniq
                    .binary_search(target)
                    .expect("switch target in table");
                Some((SuccSlot::Other(idx as u32), *target))
            }
            (Terminator::Return, Flow::Jump { target, .. }) => {
                let idx = match entry.ret_targets.iter().position(|t| t == target) {
                    Some(i) => i,
                    None => {
                        entry.ret_targets.push(*target);
                        entry.ret_targets.len() - 1
                    }
                };
                Some((SuccSlot::Other(idx as u32), *target))
            }
            (t, f) => unreachable!("terminator {t:?} produced flow {f:?}"),
        }
    }

    fn execute_unopt(&mut self, pc: Pc, machine: &mut Machine) -> Result<Next, DbtError> {
        self.translate(pc);
        let (flow, len) = self.step_block(pc, ExecSite::Unopt, machine)?;
        let cost = &self.config.cost;
        self.stats.cycles += cost.unopt_exec_per_instr * u64::from(len) + cost.dispatch_cost;

        let outcome = self.outcome(pc, &flow);
        let entry = self.cache[pc].as_mut().expect("translated");
        let profiled = !entry.frozen;
        if profiled {
            entry.record.use_count += 1;
            self.stats.profiling_ops += 1;
            self.stats.cycles += cost.profile_op_cost;
            if let Some((slot, target)) = outcome {
                entry.record.bump_edge(slot, target, 1);
                // The paper's `taken` counter: conditional taken only.
                if slot == SuccSlot::Taken {
                    self.stats.profiling_ops += 1;
                    self.stats.cycles += cost.profile_op_cost;
                }
            }
            let use_count = entry.record.use_count;
            self.trace_emit(|| EventKind::CounterBump {
                pc: pc as u64,
                use_count,
            });
        }

        if profiled && self.config.mode != ProfilingMode::NoOpt {
            let t = self.config.threshold;
            let entry = self.cache[pc].as_ref().expect("translated");
            let use_count = entry.record.use_count;
            let registered = entry.registered;
            if use_count == t && registered == 0 {
                self.cache[pc].as_mut().expect("translated").registered = 1;
                self.pool.push(pc);
                self.trace_emit(|| EventKind::Registered {
                    pc: pc as u64,
                    use_count,
                });
                if self.pool.len() >= self.config.policy.pool_trigger {
                    self.trigger_optimizer();
                }
            } else if registered == 1 && use_count == 2 * t {
                // Registered twice: optimize immediately (paper §1).
                self.cache[pc].as_mut().expect("translated").registered = 2;
                self.trace_emit(|| EventKind::RegisteredTwice {
                    pc: pc as u64,
                    use_count,
                });
                self.trigger_optimizer();
            }
        }

        Ok(match flow {
            Flow::Halted => Next::Halted,
            Flow::Jump { target, .. } => Next::Goto(target),
            Flow::Next => Next::Goto(self.cache[pc].as_ref().expect("translated").block.end),
        })
    }

    fn execute_region(&mut self, ri: usize, machine: &mut Machine) -> Result<Next, DbtError> {
        self.stats.region_entries += 1;
        self.regions[ri].entries += 1;
        self.stats.cycles += self.config.cost.region_entry_cost;
        let mut cur = 0usize;
        loop {
            if self.stats.instructions >= self.config.fuel {
                let pc = self.regions[ri].dump.copies[cur];
                return Err(DbtError::Guest(tpdbt_vm::VmError::OutOfFuel {
                    pc,
                    fuel: self.config.fuel,
                }));
            }
            let pc = self.regions[ri].dump.copies[cur];
            let site = ExecSite::Region {
                region: ri,
                copy: cur,
            };
            let (flow, len) = self.step_block(pc, site, machine)?;
            self.stats.cycles += self.config.cost.opt_exec_per_instr * u64::from(len);
            // Continuous mode keeps counting inside regions too.
            if self.config.mode == ProfilingMode::Continuous {
                self.bump_counters_continuous(pc, &flow);
            }
            let outcome = self.outcome(pc, &flow);
            let Some((slot, target)) = outcome else {
                return Ok(Next::Halted);
            };
            let region = &self.regions[ri];
            match region.succ[cur].iter().find(|(s, _)| *s == slot) {
                Some(&(_, next)) => {
                    if next == 0 {
                        self.stats.loop_backs += 1;
                    }
                    cur = next;
                }
                None => {
                    if cur == region.dump.tail {
                        self.stats.completions += 1;
                    } else {
                        self.stats.side_exits += 1;
                        self.regions[ri].side_exits += 1;
                        self.stats.cycles += self.config.cost.side_exit_penalty;
                        self.maybe_retire(ri);
                    }
                    return Ok(Next::Goto(target));
                }
            }
        }
    }

    /// Region execution over a [`CompiledTrace`] (cached-fused
    /// backend): segments run straight-line with their pre-resolved
    /// guards; only [`crate::trace::Guard::Other`] terminators (call /
    /// return / switch / halt) fall back to the generic
    /// terminator-and-outcome path, which keeps engine bookkeeping
    /// (shadow call stack, `ret_targets` numbering) exact.
    ///
    /// Statistic-for-statistic identical to [`Self::execute_region`]:
    /// same fuel-check placement, same trap-before-bump ordering, same
    /// completion / side-exit / loop-back accounting per copy.
    fn execute_region_traced(
        &mut self,
        ri: usize,
        trace: &CompiledTrace,
        machine: &mut Machine,
    ) -> Result<Next, DbtError> {
        self.stats.region_entries += 1;
        self.regions[ri].entries += 1;
        self.stats.cycles += self.config.cost.region_entry_cost;
        let opt_exec = self.config.cost.opt_exec_per_instr;
        let fuel = self.config.fuel;
        // Hot-loop stats accumulate in locals and flush at every exit;
        // the observable totals match per-segment bumps exactly (traps
        // still propagate before the trapping segment is counted).
        let base = self.stats.instructions;
        let mut instr = 0u64;
        let mut loops = 0u64;
        macro_rules! flush {
            () => {
                self.stats.instructions += instr;
                self.stats.cycles += opt_exec * instr;
                self.stats.loop_backs += loops;
            };
        }
        let mut cur = 0usize;
        loop {
            let seg = &trace.segs[cur];
            if base + instr >= fuel {
                flush!();
                return Err(DbtError::Guest(tpdbt_vm::VmError::OutOfFuel {
                    pc: seg.start,
                    fuel,
                }));
            }
            if let Err(e) = exec_body(&seg.body, seg.start, machine) {
                flush!();
                return Err(DbtError::Guest(e));
            }
            machine.set_pc(seg.term_pc);
            let (next, target) = match seg.guard.quick_eval(machine) {
                Some(hit) => {
                    instr += u64::from(seg.len);
                    hit
                }
                None => {
                    // Generic path: traps must propagate before the
                    // instruction count bumps (matches step_block).
                    let flow = match exec_term(seg.term.view(), seg.term_pc, machine) {
                        Ok(flow) => flow,
                        Err(e) => {
                            flush!();
                            return Err(DbtError::Guest(e));
                        }
                    };
                    instr += u64::from(seg.len);
                    let Some((slot, target)) = self.outcome(seg.start, &flow) else {
                        flush!();
                        return Ok(Next::Halted);
                    };
                    let next = self.regions[ri].succ[cur]
                        .iter()
                        .find(|(s, _)| *s == slot)
                        .map_or(EXIT, |&(_, n)| n as u32);
                    (next, target)
                }
            };
            if next == EXIT {
                flush!();
                if cur == self.regions[ri].dump.tail {
                    self.stats.completions += 1;
                } else {
                    self.stats.side_exits += 1;
                    self.regions[ri].side_exits += 1;
                    self.stats.cycles += self.config.cost.side_exit_penalty;
                    self.maybe_retire(ri);
                }
                return Ok(Next::Goto(target));
            }
            if next == 0 {
                loops += 1;
            }
            cur = next as usize;
        }
    }

    fn bump_counters_continuous(&mut self, pc: Pc, flow: &Flow) {
        let outcome = self.outcome(pc, flow);
        let entry = self.cache[pc].as_mut().expect("translated");
        entry.record.use_count += 1;
        self.stats.profiling_ops += 1;
        if let Some((slot, target)) = outcome {
            entry.record.bump_edge(slot, target, 1);
            if slot == SuccSlot::Taken {
                self.stats.profiling_ops += 1;
            }
        }
        let use_count = entry.record.use_count;
        self.trace_emit(|| EventKind::CounterBump {
            pc: pc as u64,
            use_count,
        });
    }

    /// Continuous mode: re-form a region whose entry has doubled its
    /// use count since formation (see [`reform_due`]).
    fn maybe_reform(&mut self, ri: usize, entry_pc: Pc) {
        if self.config.mode != ProfilingMode::Continuous {
            return;
        }
        let current_use = self.cache[entry_pc]
            .as_ref()
            .map_or(0, |e| e.record.use_count);
        if !reform_due(current_use, self.regions[ri].formed_use) {
            return;
        }
        if let Some(formed) = form_region(self, &self.config.policy, entry_pc) {
            self.stats.cycles += self.config.cost.opt_translate_per_instr * formed.total_instrs;
            self.stats.opt_invocations += 1;
            let replacement = RuntimeRegion::new(formed, self.regions[ri].dump.id, current_use);
            let id = replacement.dump.id;
            self.regions[ri] = replacement;
            // Re-formation replaces the region's optimized code: the
            // backend re-chains (and, when fusing, re-traces) the new
            // copy list in one atomic publication.
            self.backend.install_region(ri, &self.regions[ri].dump);
            // Re-formation invalidates any queued candidate built over
            // the old shape of these blocks.
            if let Some(a) = self.asyncopt.as_mut() {
                for &pc in &self.regions[ri].dump.copies {
                    a.coord.invalidate(pc);
                }
            }
            self.trace_emit(|| EventKind::RegionReformed {
                region: id as u64,
                entry_pc: entry_pc as u64,
                use_count: current_use,
            });
        }
    }

    /// Whether this mode freezes counters at optimization (two-phase
    /// semantics; adaptive freezes too, until a retirement resets).
    fn freezes(&self) -> bool {
        matches!(
            self.config.mode,
            ProfilingMode::TwoPhase | ProfilingMode::Adaptive
        )
    }

    /// Adaptive side-exit monitoring (paper §5): retire a region whose
    /// side-exit rate exceeds the policy bound; its blocks re-profile
    /// from scratch so a fresh region can form for the current phase.
    fn maybe_retire(&mut self, ri: usize) {
        if self.config.mode != ProfilingMode::Adaptive {
            return;
        }
        let region = &self.regions[ri];
        if region.retired
            || region.entries < self.config.adapt.min_entries
            || (region.side_exits as f64)
                < self.config.adapt.max_side_exit_rate * region.entries as f64
        {
            return;
        }
        let entry_pc = self.regions[ri].dump.entry_pc();
        let count = self.retire_counts.entry(entry_pc).or_insert(0);
        if *count >= self.config.adapt.max_retirements_per_entry {
            return;
        }
        *count += 1;
        self.stats.retirements += 1;
        let copies = self.regions[ri].dump.copies.clone();
        self.regions[ri].retired = true;
        // Retirement invalidates the region's optimized code.
        self.backend.retire_region(ri);
        let (region_id, entries, side_exits) = {
            let r = &self.regions[ri];
            (r.dump.id, r.entries, r.side_exits)
        };
        self.trace_emit(|| EventKind::RegionRetired {
            region: region_id as u64,
            entry_pc: entry_pc as u64,
            entries,
            side_exits,
        });
        if let Some(e) = self.cache[entry_pc].as_mut() {
            e.entry_of = None;
        }
        // Reset and unfreeze members that no live region still uses.
        let still_used: std::collections::BTreeSet<Pc> = self
            .regions
            .iter()
            .filter(|r| !r.retired)
            .flat_map(|r| r.dump.copies.iter().copied())
            .collect();
        for pc in copies {
            if still_used.contains(&pc) {
                continue;
            }
            if let Some(e) = self.cache[pc].as_mut() {
                e.frozen = false;
                e.registered = 0;
                e.record.use_count = 0;
                e.record.edges.clear();
            }
            // The reset rewrites profile history: any queued candidate
            // snapshotted over this block is now stale.
            if let Some(a) = self.asyncopt.as_mut() {
                a.coord.invalidate(pc);
            }
        }
    }

    /// The optimization phase: retranslate the candidate pool into
    /// regions.
    fn run_optimizer(&mut self) {
        self.stats.opt_invocations += 1;
        let mut candidates: Vec<Pc> = std::mem::take(&mut self.pool);
        candidates.sort_by_key(|&pc| {
            std::cmp::Reverse(self.cache[pc].as_ref().map_or(0, |e| e.record.use_count))
        });
        for seed in candidates {
            let entry = self.cache[seed]
                .as_ref()
                .expect("pooled blocks are translated");
            if entry.entry_of.is_some() {
                continue;
            }
            // A block already swallowed by another region does not seed
            // its own (its counters are frozen); continuous mode may
            // still re-seed.
            if entry.frozen && self.freezes() {
                continue;
            }
            let Some(formed) = form_region(self, &self.config.policy, seed) else {
                continue;
            };
            self.stats.cycles += self.config.cost.opt_translate_per_instr * formed.total_instrs;
            self.stats.regions_formed += 1;
            let id = self.regions.len();
            let formed_use = self.cache[seed]
                .as_ref()
                .expect("translated")
                .record
                .use_count;
            let region = RuntimeRegion::new(formed, id, formed_use);
            self.trace_emit(|| EventKind::RegionFormed {
                region: id as u64,
                entry_pc: seed as u64,
                blocks: region.dump.copies.len() as u32,
                kind: trace_region_kind(region.dump.kind),
            });
            // Freeze every member: optimized code is not instrumented
            // (two-phase semantics; continuous mode keeps counting).
            if self.freezes() {
                for &pc in &region.dump.copies {
                    let Some(e) = self.cache[pc].as_mut() else {
                        continue;
                    };
                    if e.frozen {
                        continue;
                    }
                    e.frozen = true;
                    let (use_count, registered) = (e.record.use_count, e.registered);
                    self.trace_emit(|| EventKind::CounterFrozen {
                        pc: pc as u64,
                        use_count,
                        registered,
                    });
                }
            }
            self.cache[seed].as_mut().expect("translated").entry_of = Some(id);
            // Formation installs the region's optimized code: the
            // backend resolves each copy to its decoded body once, so
            // region execution chains block-to-successor directly
            // (and, under cached-fused, compiles the region's trace).
            self.backend.install_region(id, &region.dump);
            self.regions.push(region);
        }
    }

    /// Runs the optimization phase per [`OptMode`]: inline in sync
    /// mode, or by queueing snapshots to the background service.
    fn trigger_optimizer(&mut self) {
        if self.asyncopt.is_some() {
            self.enqueue_candidates();
        } else {
            self.run_optimizer();
        }
    }

    /// Async optimization phase, enqueue half: drains the candidate
    /// pool into the background service. Each candidate carries an
    /// immutable profile snapshot plus epoch stamps so the install half
    /// can detect staleness. Counters do *not* freeze here — they keep
    /// drifting until install, which is the phenomenon the drift metric
    /// measures.
    fn enqueue_candidates(&mut self) {
        let mut a = self.asyncopt.take().expect("async mode");
        self.stats.opt_invocations += 1;
        let mut candidates: Vec<Pc> = std::mem::take(&mut self.pool);
        candidates.sort_by_key(|&pc| {
            std::cmp::Reverse(self.cache[pc].as_ref().map_or(0, |e| e.record.use_count))
        });
        for seed in candidates {
            let entry = self.cache[seed]
                .as_ref()
                .expect("pooled blocks are translated");
            if entry.entry_of.is_some()
                || (entry.frozen && self.freezes())
                || a.pending.contains(&seed)
            {
                continue;
            }
            let use_count = entry.record.use_count;
            let snapshot = snapshot_neighborhood(self, seed, &self.config.policy);
            let stamps = a.coord.stamp(snapshot.members());
            let probs = snapshot.probabilities();
            let job = OptJob {
                seed,
                snapshot,
                stamps,
                probs,
                policy: self.config.policy,
            };
            // Every handed-off candidate is counted, including bounces,
            // so opt_enqueued == opt_installed + opt_discarded at end.
            self.stats.opt_enqueued += 1;
            if a.service.submit(job) {
                a.pending.insert(seed);
                let depth = a.service.depth() as u64;
                self.stats.opt_queue_peak = self.stats.opt_queue_peak.max(depth);
                self.trace_emit(|| EventKind::OptEnqueued {
                    pc: seed as u64,
                    use_count,
                    depth,
                });
            } else {
                // Queue full: bounce. The seed goes back to the pool so
                // a later trigger retries it.
                self.stats.opt_discarded += 1;
                self.trace_emit(|| EventKind::OptDiscarded {
                    pc: seed as u64,
                    use_count,
                });
                self.pool.push(seed);
            }
        }
        self.asyncopt = Some(a);
    }

    /// Async install half, steady state: applies whatever the workers
    /// have finished, without blocking.
    fn drain_async(&mut self) {
        let done = match self.asyncopt.as_ref() {
            Some(a) => a.service.drain(),
            None => return,
        };
        for out in done {
            self.resolve_async(out);
        }
    }

    /// Async install half, end of run: waits for in-flight candidates
    /// and resolves each to an install or a discard.
    fn finish_async(&mut self) {
        let done = match self.asyncopt.as_ref() {
            Some(a) => a.service.flush(),
            None => return,
        };
        for out in done {
            self.resolve_async(out);
        }
    }

    /// Epoch-validated installation of one background-formed region.
    /// The candidate is discarded when formation failed, any snapshotted
    /// block's epoch moved (retired / reformed while queued), the seed
    /// was meanwhile covered by another region, or it froze under a
    /// freezing mode. Unlike [`Self::run_optimizer`], no optimization
    /// cycles are charged: formation ran concurrently with execution.
    fn resolve_async(&mut self, out: OptOutcome) {
        let mut a = self.asyncopt.take().expect("async mode");
        a.pending.remove(&out.seed);
        let seed = out.seed;
        let entry = self.cache[seed]
            .as_ref()
            .expect("snapshotted blocks are translated");
        let use_now = entry.record.use_count;
        let installable = out.formed.is_some()
            && a.coord.still_current(&out.stamps)
            && entry.entry_of.is_none()
            && !(entry.frozen && self.freezes());
        if !installable {
            self.stats.opt_discarded += 1;
            self.trace_emit(|| EventKind::OptDiscarded {
                pc: seed as u64,
                use_count: use_now,
            });
            self.asyncopt = Some(a);
            return;
        }
        let formed = out.formed.expect("checked installable");
        self.stats.regions_formed += 1;
        let id = self.regions.len();
        let region = RuntimeRegion::new(formed, id, use_now);
        let blocks_n = region.dump.copies.len() as u32;
        self.trace_emit(|| EventKind::RegionFormed {
            region: id as u64,
            entry_pc: seed as u64,
            blocks: blocks_n,
            kind: trace_region_kind(region.dump.kind),
        });
        if self.freezes() {
            for &pc in &region.dump.copies {
                let Some(e) = self.cache[pc].as_mut() else {
                    continue;
                };
                if e.frozen {
                    continue;
                }
                e.frozen = true;
                let (use_count, registered) = (e.record.use_count, e.registered);
                self.trace_emit(|| EventKind::CounterFrozen {
                    pc: pc as u64,
                    use_count,
                    registered,
                });
            }
        }
        // Drift sample: enqueue-time vs install-time branch probability
        // of each conditional member, weighted by install-time use.
        for (&pc, &p_enq) in &out.probs {
            if !region.dump.copies.contains(&pc) {
                continue;
            }
            let Some(e) = self.cache[pc].as_ref() else {
                continue;
            };
            if let Some(p_now) = e.record.branch_probability() {
                a.drift.push((p_enq, p_now, e.record.use_count as f64));
            }
        }
        self.cache[seed].as_mut().expect("translated").entry_of = Some(id);
        // The worker already compiled the copy chain (and, under
        // cached-fused, the trace) against the shared decode cache;
        // hand both to the backend so installation does no compile
        // work on the execution thread.
        self.backend
            .install_region_compiled(id, &region.dump, out.chain, out.trace);
        self.regions.push(region);
        self.stats.opt_installed += 1;
        self.trace_emit(|| EventKind::OptInstalled {
            region: id as u64,
            entry_pc: seed as u64,
            blocks: blocks_n,
            use_count: use_now,
        });
        self.asyncopt = Some(a);
    }

    fn into_outcome(self, output: Vec<i64>) -> RunOutcome {
        let mut blocks = std::collections::BTreeMap::new();
        for entry in self.cache.into_iter().flatten() {
            if entry.record.use_count > 0 {
                blocks.insert(entry.block.start, entry.record);
            }
        }
        let threshold = if self.config.mode == ProfilingMode::NoOpt {
            0
        } else {
            self.config.threshold
        };
        let mut regions: Vec<RegionDump> = self
            .regions
            .into_iter()
            .filter(|r| !r.retired)
            .map(|r| r.dump)
            .collect();
        for (i, r) in regions.iter_mut().enumerate() {
            r.id = i;
        }
        let inip = InipDump {
            threshold,
            regions,
            blocks,
            entry: self.program.entry(),
            profiling_ops: self.stats.profiling_ops,
            cycles: self.stats.cycles,
            instructions: self.stats.instructions,
        };
        RunOutcome {
            inip,
            output,
            stats: self.stats,
            intervals: self.intervals,
            drift: self.asyncopt.map_or_else(Vec::new, |a| a.drift),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegionPolicy;
    use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};

    fn hot_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, iters, |_| {}).unwrap();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn no_opt_mode_profiles_whole_run() {
        let p = hot_loop(1000);
        let out = Dbt::new(DbtConfig::no_opt()).run(&p, &[]).unwrap();
        assert!(out.inip.regions.is_empty());
        let plain = out.as_plain_profile();
        // The loop's conditional latch executed 1000 times in total
        // (split across the entry block and the re-decoded interior
        // block, which overlap) and was taken 999 times.
        let conds: Vec<_> = plain
            .blocks
            .values()
            .filter(|b| b.kind == Some(TermKind::Cond))
            .collect();
        assert_eq!(conds.iter().map(|b| b.use_count).sum::<u64>(), 1000);
        assert_eq!(conds.iter().map(|b| b.taken_count()).sum::<u64>(), 999);
        // Profiling ops = sum of use + taken increments.
        let expect: u64 = plain
            .blocks
            .values()
            .map(|b| b.use_count + b.taken_count())
            .sum();
        assert_eq!(plain.profiling_ops, expect);
    }

    #[test]
    fn two_phase_forms_loop_region_and_freezes_counters() {
        let p = hot_loop(10_000);
        let t = 100;
        let out = Dbt::new(DbtConfig::two_phase(t)).run(&p, &[]).unwrap();
        assert_eq!(out.inip.regions.len(), 1);
        let region = &out.inip.regions[0];
        assert_eq!(region.kind, RegionKind::Loop);
        // Frozen initial profile: T <= use <= 2T for region blocks (the
        // upper bound is reached exactly when the registered-twice rule
        // triggers the optimizer).
        for &pc in &region.copies {
            let rec = out.inip.block(pc).unwrap();
            assert!(
                rec.use_count >= t && rec.use_count <= 2 * t,
                "use {} outside [T, 2T]",
                rec.use_count
            );
        }
        assert!(out.stats.loop_backs > 9000);
        assert_eq!(out.stats.regions_formed, 1);
    }

    #[test]
    fn translated_output_matches_interpreter() {
        // An input-dependent program: double every input and echo it.
        let mut b = ProgramBuilder::new();
        let (v, acc) = (Reg::new(0), Reg::new(1));
        let top = b.fresh_label("top");
        let done = b.fresh_label("done");
        b.bind(top).unwrap();
        b.input(v);
        b.br_imm(Cond::Lt, v, 0, done);
        b.muli(v, v, 2);
        b.add(acc, acc, v);
        b.out(v);
        b.jmp(top);
        b.bind(done).unwrap();
        b.out(acc);
        b.halt();
        let p = b.build().unwrap();
        let input: Vec<i64> = (0..5000).map(|i| i % 97).collect();
        let expected = tpdbt_vm::run_collect(&p, &input).unwrap();
        for config in [
            DbtConfig::no_opt(),
            DbtConfig::two_phase(50),
            DbtConfig::continuous(50),
        ] {
            let out = Dbt::new(config).run(&p, &input).unwrap();
            assert_eq!(out.output, expected, "mode {:?}", config.mode);
        }
    }

    #[test]
    fn lower_threshold_optimizes_earlier_and_runs_faster_here() {
        let p = hot_loop(200_000);
        let fast = Dbt::new(DbtConfig::two_phase(100)).run(&p, &[]).unwrap();
        let slow = Dbt::new(DbtConfig::two_phase(100_000))
            .run(&p, &[])
            .unwrap();
        assert!(
            fast.stats.cycles < slow.stats.cycles,
            "early optimization should win on a stable hot loop: {} vs {}",
            fast.stats.cycles,
            slow.stats.cycles
        );
    }

    #[test]
    fn profiling_ops_shrink_with_threshold() {
        let p = hot_loop(100_000);
        let small = Dbt::new(DbtConfig::two_phase(100)).run(&p, &[]).unwrap();
        let large = Dbt::new(DbtConfig::no_opt()).run(&p, &[]).unwrap();
        assert!(small.inip.profiling_ops * 10 < large.inip.profiling_ops);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let p = hot_loop(1_000_000);
        let cfg = DbtConfig::two_phase(100).with_fuel(1000);
        let err = Dbt::new(cfg).run(&p, &[]).unwrap_err();
        assert!(matches!(
            err,
            DbtError::Guest(tpdbt_vm::VmError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn continuous_mode_reforms_regions() {
        // A loop whose interior branch flips bias halfway through.
        let mut b = ProgramBuilder::new();
        let (i, x, half) = (Reg::new(0), Reg::new(1), Reg::new(2));
        b.movi(half, 50_000);
        let head = b.fresh_label("head");
        let then = b.fresh_label("then");
        let join = b.fresh_label("join");
        b.movi(i, 0);
        b.bind(head).unwrap();
        b.br_reg(Cond::Lt, i, half, then);
        b.addi(x, x, 2); // second-half path
        b.jmp(join);
        b.bind(then).unwrap();
        b.addi(x, x, 1); // first-half path
        b.bind(join).unwrap();
        b.addi(i, i, 1);
        b.br_imm(Cond::Lt, i, 100_000, head);
        b.halt();
        let p = b.build().unwrap();
        let out = Dbt::new(DbtConfig::continuous(1000)).run(&p, &[]).unwrap();
        // Re-formation fired at least once (opt invocations beyond the
        // initial pool drain).
        assert!(out.stats.opt_invocations > 1, "{:?}", out.stats);
        let two = Dbt::new(DbtConfig::two_phase(1000)).run(&p, &[]).unwrap();
        assert_eq!(two.output, out.output);
    }

    /// A loop whose likely exit direction flips halfway: two-phase
    /// regions keep side-exiting, adaptive mode retires and re-forms.
    fn phase_flip_program() -> Program {
        let mut b = ProgramBuilder::new();
        let (i, x, half) = (Reg::new(0), Reg::new(1), Reg::new(2));
        b.movi(half, 60_000);
        let head = b.fresh_label("head");
        let then = b.fresh_label("then");
        let join = b.fresh_label("join");
        b.movi(i, 0);
        b.bind(head).unwrap();
        b.br_reg(Cond::Lt, i, half, then);
        b.addi(x, x, 2);
        b.jmp(join);
        b.bind(then).unwrap();
        b.addi(x, x, 1);
        b.bind(join).unwrap();
        b.addi(i, i, 1);
        b.br_imm(Cond::Lt, i, 120_000, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn adaptive_mode_retires_stale_regions() {
        let p = phase_flip_program();
        let two = Dbt::new(DbtConfig::two_phase(500)).run(&p, &[]).unwrap();
        let adaptive = Dbt::new(DbtConfig::adaptive(500)).run(&p, &[]).unwrap();
        assert_eq!(
            two.output, adaptive.output,
            "adaptation must stay transparent"
        );
        assert!(adaptive.stats.retirements > 0, "{:?}", adaptive.stats);
        // Adaptation trades retranslation for fewer steady-state side
        // exits; over a long phase-flipped run it should not side-exit
        // more than the frozen configuration.
        assert!(
            adaptive.stats.side_exits <= two.stats.side_exits,
            "adaptive {} vs two-phase {}",
            adaptive.stats.side_exits,
            two.stats.side_exits
        );
    }

    #[test]
    fn adaptive_mode_matches_two_phase_on_stable_programs() {
        let p = hot_loop(100_000);
        let two = Dbt::new(DbtConfig::two_phase(500)).run(&p, &[]).unwrap();
        let adaptive = Dbt::new(DbtConfig::adaptive(500)).run(&p, &[]).unwrap();
        assert_eq!(adaptive.stats.retirements, 0, "stable loop must not retire");
        assert_eq!(two.output, adaptive.output);
    }

    #[test]
    fn interval_recording_captures_phase_flip() {
        let p = phase_flip_program();
        let cfg = DbtConfig::no_opt().with_interval(50_000);
        let out = Dbt::new(cfg).run(&p, &[]).unwrap();
        assert!(
            out.intervals.len() >= 8,
            "{} intervals",
            out.intervals.len()
        );
        // Interval deltas cover the whole run exactly.
        let total: u64 = out
            .intervals
            .iter()
            .flat_map(|iv| iv.branches.values())
            .map(|(u, _)| u)
            .sum();
        let cond_total: u64 = out
            .inip
            .blocks
            .values()
            .filter(|b| b.kind == Some(TermKind::Cond))
            .map(|b| b.use_count)
            .sum();
        assert_eq!(total, cond_total);
        // And phase detection sees the flip.
        let phases = tpdbt_profile::phases::detect_phases(&out.intervals, 0.1);
        assert!(
            phases.len() >= 2,
            "expected a phase split, got {}",
            phases.len()
        );
    }

    #[test]
    fn no_interval_config_records_nothing() {
        let p = hot_loop(10_000);
        let out = Dbt::new(DbtConfig::no_opt()).run(&p, &[]).unwrap();
        assert!(out.intervals.is_empty());
    }

    #[test]
    fn reform_due_is_exact_at_the_boundary_and_for_huge_counts() {
        // The doubling boundary itself.
        assert!(!reform_due(199, 100));
        assert!(reform_due(200, 100));
        assert!(reform_due(201, 100));
        // formed_use == 0 is always due (matches the old behavior).
        assert!(reform_due(0, 0));
        assert!(reform_due(1, 0));
        // Near u64::MAX the old `formed_use.saturating_mul(2)` form
        // reported a region formed at u64::MAX uses as due again at
        // u64::MAX — it can never have doubled.
        assert!(!reform_due(u64::MAX, u64::MAX));
        assert!(!reform_due(u64::MAX, u64::MAX / 2 + 1));
        assert!(reform_due(u64::MAX, u64::MAX / 2));
    }

    /// Regression (frozen-profile boundary): the pool-full path freezes
    /// a region seed at exactly `T` — registration happens at
    /// `use == T` and `pool_trigger = 1` runs the optimizer in the same
    /// step, before the counter can advance.
    #[test]
    fn pool_full_path_freezes_seed_at_exactly_t() {
        let p = hot_loop(10_000);
        let t = 100;
        let policy = RegionPolicy {
            pool_trigger: 1,
            ..RegionPolicy::default()
        };
        let cfg = DbtConfig::two_phase(t).with_policy(policy);
        let out = Dbt::new(cfg).run(&p, &[]).unwrap();
        assert!(!out.inip.regions.is_empty());
        for region in &out.inip.regions {
            let rec = out.inip.block(region.entry_pc()).unwrap();
            assert_eq!(
                rec.use_count,
                t,
                "pool-full seed at {} must freeze at exactly T",
                region.entry_pc()
            );
        }
    }

    /// Regression (frozen-profile boundary): the registered-twice path
    /// freezes the triggering block at exactly `2T`. The default pool
    /// (trigger 8) never fills on a small loop, so the optimizer only
    /// runs when a block re-registers at `use == 2T` — the reconciled
    /// invariant's inclusive upper bound.
    #[test]
    fn registered_twice_path_freezes_trigger_at_exactly_2t() {
        let p = hot_loop(10_000);
        let t = 100;
        let out = Dbt::new(DbtConfig::two_phase(t)).run(&p, &[]).unwrap();
        assert_eq!(out.inip.regions.len(), 1);
        let rec = out.inip.block(out.inip.regions[0].entry_pc()).unwrap();
        assert_eq!(
            rec.use_count,
            2 * t,
            "registered-twice trigger must freeze at exactly 2T"
        );
    }

    #[test]
    fn stats_are_reflected_in_dump() {
        let p = hot_loop(50_000);
        let out = Dbt::new(DbtConfig::two_phase(500)).run(&p, &[]).unwrap();
        assert_eq!(out.inip.cycles, out.stats.cycles);
        assert_eq!(out.inip.profiling_ops, out.stats.profiling_ops);
        assert_eq!(out.inip.instructions, out.stats.instructions);
        assert_eq!(out.inip.threshold, 500);
    }

    mod async_opt {
        use super::*;

        #[test]
        fn sync_mode_keeps_async_counters_at_zero() {
            let p = hot_loop(50_000);
            let out = Dbt::new(DbtConfig::two_phase(500)).run(&p, &[]).unwrap();
            assert_eq!(out.stats.opt_enqueued, 0);
            assert_eq!(out.stats.opt_installed, 0);
            assert_eq!(out.stats.opt_discarded, 0);
            assert_eq!(out.stats.opt_queue_peak, 0);
            assert!(out.drift.is_empty());
        }

        #[test]
        fn async_mode_preserves_guest_output_across_profiling_modes() {
            let p = phase_flip_program();
            for make in [
                DbtConfig::two_phase as fn(u64) -> DbtConfig,
                DbtConfig::continuous,
                DbtConfig::adaptive,
            ] {
                let sync = Dbt::new(make(500)).run(&p, &[]).unwrap();
                let async_out = Dbt::new(make(500).with_opt_mode(OptMode::Async))
                    .run(&p, &[])
                    .unwrap();
                assert_eq!(
                    sync.output, async_out.output,
                    "async optimization must be transparent to the guest"
                );
                // Every handed-off candidate resolved one way or the
                // other once the final flush ran.
                assert_eq!(
                    async_out.stats.opt_enqueued,
                    async_out.stats.opt_installed + async_out.stats.opt_discarded,
                    "{:?}",
                    async_out.stats
                );
            }
        }

        #[test]
        fn async_no_opt_never_spins_up_the_service() {
            let p = hot_loop(10_000);
            let sync = Dbt::new(DbtConfig::no_opt()).run(&p, &[]).unwrap();
            let async_out = Dbt::new(DbtConfig::no_opt().with_opt_mode(OptMode::Async))
                .run(&p, &[])
                .unwrap();
            assert_eq!(sync.output, async_out.output);
            assert_eq!(sync.stats, async_out.stats);
            assert_eq!(async_out.stats.opt_enqueued, 0);
        }

        /// Satellite regression: a candidate whose seed gets covered
        /// (here: frozen into an earlier install) while it sits in the
        /// optimizer queue must be discarded at install time. One
        /// worker makes completion order FIFO: the hottest seed's
        /// region installs first and freezes the hot path, so the
        /// trailing candidate resolves against a frozen seed.
        #[test]
        fn stale_candidate_is_discarded_not_installed() {
            let p = phase_flip_program();
            let policy = RegionPolicy {
                pool_trigger: 2,
                ..RegionPolicy::default()
            };
            let cfg = DbtConfig::two_phase(100)
                .with_policy(policy)
                .with_opt_mode(OptMode::Async)
                .with_opt_workers(1);
            let out = Dbt::new(cfg).run(&p, &[]).unwrap();
            assert!(out.stats.opt_enqueued >= 2, "{:?}", out.stats);
            assert!(out.stats.opt_installed >= 1, "{:?}", out.stats);
            assert!(
                out.stats.opt_discarded >= 1,
                "the swallowed trailing candidate must discard: {:?}",
                out.stats
            );
            assert_eq!(
                out.stats.opt_enqueued,
                out.stats.opt_installed + out.stats.opt_discarded
            );
            // Installed regions still execute optimized code.
            assert!(out.stats.region_entries > 0);
        }

        #[test]
        fn async_installs_record_drift_points() {
            let p = phase_flip_program();
            let cfg = DbtConfig::two_phase(500).with_opt_mode(OptMode::Async);
            let out = Dbt::new(cfg).run(&p, &[]).unwrap();
            assert!(out.stats.opt_installed > 0, "{:?}", out.stats);
            assert!(
                !out.drift.is_empty(),
                "installed conditional members must yield drift samples"
            );
            for &(p_enq, p_inst, weight) in &out.drift {
                assert!((0.0..=1.0).contains(&p_enq));
                assert!((0.0..=1.0).contains(&p_inst));
                assert!(weight >= 0.0);
            }
            // The async freeze happens at install, after extra profile
            // accumulation: frozen use counts may exceed sync's 2T
            // bound, and install-time weights reflect that.
            assert!(out.drift.iter().any(|&(_, _, w)| w >= 500.0));
        }

        #[test]
        fn async_mode_skips_opt_translate_charges() {
            // Background formation runs concurrently, so the async
            // timeline omits sync's opt_translate stall cycles on an
            // otherwise identical instruction stream.
            let p = hot_loop(100_000);
            let sync = Dbt::new(DbtConfig::two_phase(500)).run(&p, &[]).unwrap();
            let async_out = Dbt::new(DbtConfig::two_phase(500).with_opt_mode(OptMode::Async))
                .run(&p, &[])
                .unwrap();
            assert_eq!(sync.output, async_out.output);
            assert_eq!(sync.stats.instructions, async_out.stats.instructions);
        }
    }

    #[cfg(feature = "trace")]
    mod trace_events {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn two_phase_trace_proves_the_freeze_invariant() {
            let p = hot_loop(10_000);
            let t = 100;
            let tracer = Arc::new(Tracer::new());
            let out = Dbt::new(DbtConfig::two_phase(t))
                .with_tracer(Arc::clone(&tracer))
                .run(&p, &[])
                .unwrap();
            assert_eq!(tracer.count("region_formed"), out.stats.regions_formed);
            assert_eq!(
                tracer.count("block_translated"),
                out.stats.blocks_translated
            );
            assert!(tracer.count("counter_frozen") > 0);
            assert!(tracer.count("registered") > 0);
            assert_eq!(tracer.count("registered_twice"), 1);
            let mut frozen_seen = 0;
            for e in tracer.events() {
                match e.kind {
                    EventKind::Registered { use_count, .. } => assert_eq!(use_count, t),
                    EventKind::RegisteredTwice { use_count, .. } => {
                        assert_eq!(use_count, 2 * t);
                    }
                    EventKind::CounterFrozen {
                        use_count,
                        registered,
                        ..
                    } => {
                        frozen_seen += 1;
                        if registered > 0 {
                            assert!(
                                use_count >= t && use_count <= 2 * t,
                                "registered block froze at {use_count}, outside [T, 2T]"
                            );
                        }
                        if registered == 2 {
                            assert_eq!(use_count, 2 * t, "registered-twice freeze");
                        }
                    }
                    _ => {}
                }
            }
            assert_eq!(frozen_seen, tracer.count("counter_frozen"));
        }

        #[test]
        fn untraced_runs_emit_nothing_and_match_traced_output() {
            let p = hot_loop(10_000);
            let tracer = Arc::new(Tracer::new());
            let traced = Dbt::new(DbtConfig::two_phase(100))
                .with_tracer(Arc::clone(&tracer))
                .run(&p, &[])
                .unwrap();
            let untraced = Dbt::new(DbtConfig::two_phase(100)).run(&p, &[]).unwrap();
            assert_eq!(traced.output, untraced.output);
            assert_eq!(traced.stats, untraced.stats);
            assert!(!tracer.is_empty());
        }

        #[test]
        fn continuous_mode_emits_reform_events() {
            let p = phase_flip_program();
            let tracer = Arc::new(Tracer::new());
            let out = Dbt::new(DbtConfig::continuous(1000))
                .with_tracer(Arc::clone(&tracer))
                .run(&p, &[])
                .unwrap();
            assert!(
                tracer.count("region_reformed") >= 1,
                "{:?}",
                tracer.counts()
            );
            // Re-formation is an optimizer invocation beyond the pool
            // drains that formed regions.
            assert!(out.stats.opt_invocations > tracer.count("region_formed"));
            // The ring wrapped (continuous mode bumps forever) but
            // per-kind totals stayed exact: one bump event per use
            // increment, and counters never freeze or reset here.
            let total_use: u64 = out.inip.blocks.values().map(|b| b.use_count).sum();
            assert_eq!(tracer.count("counter_bump"), total_use);
            assert!(tracer.dropped() > 0, "expected the ring to wrap");
        }

        #[test]
        fn adaptive_mode_emits_retirement_events() {
            let p = phase_flip_program();
            let tracer = Arc::new(Tracer::new());
            let out = Dbt::new(DbtConfig::adaptive(500))
                .with_tracer(Arc::clone(&tracer))
                .run(&p, &[])
                .unwrap();
            assert!(out.stats.retirements > 0);
            assert_eq!(tracer.count("region_retired"), out.stats.retirements);
        }

        #[test]
        fn async_mode_emits_optimizer_lifecycle_events() {
            let p = phase_flip_program();
            let tracer = Arc::new(Tracer::new());
            let cfg = DbtConfig::two_phase(500).with_opt_mode(OptMode::Async);
            let out = Dbt::new(cfg)
                .with_tracer(Arc::clone(&tracer))
                .run(&p, &[])
                .unwrap();
            // Successful submissions each produce exactly one enqueue
            // and one worker-start event; every install and discard is
            // mirrored in the stats.
            assert!(tracer.count("opt_enqueued") > 0);
            assert_eq!(tracer.count("opt_started"), tracer.count("opt_enqueued"));
            assert_eq!(tracer.count("opt_installed"), out.stats.opt_installed);
            assert_eq!(tracer.count("opt_discarded"), out.stats.opt_discarded);
            // Bounced submissions (queue full) are the only gap between
            // the enqueue counter and the enqueue events.
            let bounced = out.stats.opt_enqueued - tracer.count("opt_enqueued");
            assert!(bounced <= out.stats.opt_discarded);
            // Each install also announced its region.
            assert_eq!(tracer.count("region_formed"), out.stats.regions_formed);
            assert_eq!(out.stats.opt_installed, out.stats.regions_formed);
        }
    }
}
