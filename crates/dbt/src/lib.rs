//! The two-phase dynamic binary translator runtime.
//!
//! This crate is the reproduction's stand-in for Intel's IA32EL (Baraz
//! et al., MICRO-36 2003), the infrastructure the CGO 2004 paper
//! instruments. It implements the architecture the paper describes:
//!
//! * **Profiling phase** — each guest basic block is translated quickly
//!   on first execution and instrumented to collect a `use` count (times
//!   visited) and a `taken` count (times its conditional branch was
//!   taken). Execution of unoptimized blocks pays per-instruction and
//!   per-counter costs in the [`CostModel`].
//! * **Retranslation threshold** — when a block's `use` count reaches the
//!   threshold `T`, the block is registered in a pool of candidate
//!   blocks. When the pool is full, or a block is registered twice
//!   (`use == 2T`), the optimization phase runs.
//! * **Optimization phase** — candidate blocks seed **regions**: traces
//!   grown along likely successors using `taken/use` branch
//!   probabilities, with hammock (if-then / if-else diamond) inclusion
//!   and **loop regions** when the trace closes back on its entry.
//!   Blocks may be duplicated into multiple regions. Optimized blocks
//!   stop profiling — a registered block's counter freezes with
//!   `T ≤ use ≤ 2T` (the upper bound is reached exactly when the
//!   registered-twice rule fires the optimizer at `use == 2T`;
//!   pool-full triggers freeze strictly below it), which is precisely
//!   the paper's *initial profile*. Non-candidate blocks pulled into a
//!   region as hammock arms may freeze below `T`.
//! * **Optimized execution** — region code runs at a faster
//!   per-instruction cost; leaving a region anywhere but its designated
//!   tail is a *side exit* and pays a penalty. Region formation itself
//!   costs optimization cycles. These costs drive the paper's Figure 17
//!   performance curve.
//!
//! Running with [`ProfilingMode::NoOpt`] never optimizes and yields the
//! whole-run average profile (`AVEP`, or `INIP(train)` on a training
//! input). [`ProfilingMode::Continuous`] implements the paper's
//! future-work continuous profiling (counters never freeze, regions are
//! re-formed when stale) and is used for ablation studies.
//!
//! With [`OptMode::Async`] the optimization phase is decoupled from
//! execution: hot candidates are queued to background optimizer threads
//! (`tpdbt-optimizer`) while profiling continues, and finished regions
//! are installed between guest blocks under epoch validation — stale
//! candidates (members retired / reformed while queued) are discarded.
//! Guest output is identical to [`OptMode::Sync`]; the frozen profile
//! legitimately drifts, which [`RunOutcome::drift`] quantifies (the
//! `Sd.IP` metric). See DESIGN.md §12.
//!
//! How translated code executes on the *host* is a separate axis,
//! selected by [`Backend`]: reference interpretation (`interp`), a
//! pre-decoded translation cache (`cached`), or the cache plus
//! superinstruction fusion and trace-compiled regions (`cached-fused`,
//! DESIGN.md §16). Backends never change observable results — output,
//! stats, profiles, and intervals are bitwise identical across all
//! three.
//!
//! # Example
//!
//! ```
//! use tpdbt_isa::{structured, Cond, ProgramBuilder, Reg};
//! use tpdbt_dbt::{Dbt, DbtConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A program with one hot loop.
//! let mut b = ProgramBuilder::new();
//! let r = Reg::new(0);
//! structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 10_000, |_| {})?;
//! b.halt();
//! let program = b.build()?;
//!
//! let outcome = Dbt::new(DbtConfig::two_phase(100)).run(&program, &[])?;
//! assert_eq!(outcome.inip.regions.len(), 1); // the loop became a region
//! assert!(outcome.stats.loop_backs > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asyncopt;
mod backend;
mod config;
mod engine;
mod error;
pub mod offline;
mod region;
mod trace;

pub use backend::{
    Backend, CachedBackend, ChainTable, ExecBackend, ExecSite, InterpBackend, RegionCode,
};
pub use config::{AdaptPolicy, CostModel, DbtConfig, OptMode, ProfilingMode, RegionPolicy};
pub use engine::{Dbt, ExecStats, RunOutcome};
pub use error::DbtError;
pub use trace::CompiledTrace;
