//! The engine side of asynchronous optimization (`--opt-mode async`).
//!
//! In [`crate::OptMode::Async`] the optimization phase is decoupled
//! from execution: when a trigger fires, hot candidates are *snapshotted*
//! and queued to `tpdbt-optimizer` worker threads instead of being
//! formed inline. Workers run region formation and cached-backend
//! compilation against the immutable snapshot while the execution
//! thread keeps running — and keeps profiling, because nothing freezes
//! until a region actually installs. Completions are applied between
//! guest blocks under epoch validation: a candidate whose source blocks
//! were retired, reformed, or otherwise invalidated while it was queued
//! is discarded, never installed stale.
//!
//! The deliberate semantic difference from sync mode is *when counters
//! freeze*. Sync freezes at the trigger (`T ≤ use ≤ 2T`, the paper's
//! initial profile); async freezes at install, after the profile has
//! kept drifting — each install therefore records `(p_enqueue,
//! p_install, use_install)` drift points, the raw material of the
//! `Sd.IP` metric (`tpdbt_profile::metrics::sd_ip`). Guest *output* is
//! identical in both modes: regions only change how code runs, not what
//! it computes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use tpdbt_isa::{DecodedBlock, Pc, PredecodedProgram, Program, Terminator};
use tpdbt_optimizer::{Coordinator, OptService};
use tpdbt_profile::BlockRecord;
#[cfg(feature = "trace")]
use tpdbt_trace::EventKind;
use tpdbt_trace::Tracer;

use crate::config::RegionPolicy;
use crate::region::{form_region, BlockSource, FormedRegion};
use crate::trace::{compile_trace, CompiledTrace};

/// Bound of the hot-candidate queue. A full queue rejects the
/// submission; the candidate keeps profiling and can re-trigger at
/// `use == 2T` or on a later pool drain.
pub(crate) const QUEUE_CAPACITY: usize = 64;

/// An owned, immutable copy of a candidate's translated neighborhood —
/// everything region formation may read, detached from live engine
/// state so workers need no locks.
pub(crate) struct ProfileSnapshot {
    blocks: BTreeMap<Pc, (Terminator, BlockRecord, u32)>,
}

impl ProfileSnapshot {
    /// The per-member branch probabilities at snapshot time, for drift
    /// measurement.
    pub(crate) fn probabilities(&self) -> BTreeMap<Pc, f64> {
        self.blocks
            .iter()
            .filter_map(|(&pc, (_, rec, _))| rec.branch_probability().map(|p| (pc, p)))
            .collect()
    }

    /// The snapshotted addresses (the epoch-stamp key set).
    pub(crate) fn members(&self) -> impl Iterator<Item = &Pc> {
        self.blocks.keys()
    }
}

impl BlockSource for ProfileSnapshot {
    fn terminator(&self, pc: Pc) -> Option<&Terminator> {
        self.blocks.get(&pc).map(|(t, _, _)| t)
    }
    fn record(&self, pc: Pc) -> Option<&BlockRecord> {
        self.blocks.get(&pc).map(|(_, r, _)| r)
    }
    fn block_len(&self, pc: Pc) -> Option<u32> {
        self.blocks.get(&pc).map(|(_, _, len)| *len)
    }
}

/// Builds a snapshot by bounded breadth-first walk from `seed` over
/// profiled edges and static successors, consulting `src` (the engine's
/// live translation cache). Blocks beyond the bound are simply absent,
/// which makes formation conservative, never wrong.
pub(crate) fn snapshot_neighborhood<S: BlockSource>(
    src: &S,
    seed: Pc,
    policy: &RegionPolicy,
) -> ProfileSnapshot {
    let cap = policy.max_region_blocks * 4 + 16;
    let mut blocks = BTreeMap::new();
    let mut queue: VecDeque<Pc> = VecDeque::from([seed]);
    while let Some(pc) = queue.pop_front() {
        if blocks.contains_key(&pc) || blocks.len() >= cap {
            continue;
        }
        let (Some(term), Some(record), Some(len)) =
            (src.terminator(pc), src.record(pc), src.block_len(pc))
        else {
            continue;
        };
        for (_, target, _) in &record.edges {
            queue.push_back(*target);
        }
        match term {
            Terminator::Jump { target } => queue.push_back(*target),
            Terminator::Branch { taken, fallthrough } => {
                queue.push_back(*taken);
                queue.push_back(*fallthrough);
            }
            Terminator::Call { target, next } => {
                queue.push_back(*target);
                queue.push_back(*next);
            }
            Terminator::Switch { .. } | Terminator::Return | Terminator::Halt => {}
        }
        blocks.insert(pc, (term.clone(), record.clone(), len));
    }
    ProfileSnapshot { blocks }
}

/// A queued optimization candidate.
pub(crate) struct OptJob {
    pub seed: Pc,
    pub snapshot: ProfileSnapshot,
    /// Epochs of every snapshotted block at enqueue time.
    pub stamps: Vec<(Pc, u64)>,
    /// Branch probabilities at enqueue time (drift baseline).
    pub probs: BTreeMap<Pc, f64>,
    pub policy: RegionPolicy,
}

/// A worker's completed candidate, back on the execution thread.
pub(crate) struct OptOutcome {
    pub seed: Pc,
    pub stamps: Vec<(Pc, u64)>,
    pub probs: BTreeMap<Pc, f64>,
    /// The formed region, or `None` when formation failed.
    pub formed: Option<FormedRegion>,
    /// Copies pre-compiled by the worker (parallel to `formed.copies`
    /// when complete; the backend falls back to its own cache
    /// otherwise). Fused when the run uses the cached-fused backend.
    pub chain: Vec<Arc<DecodedBlock>>,
    /// The region's straight-line trace, pre-compiled by the worker
    /// (cached-fused backend only).
    pub trace: Option<Arc<CompiledTrace>>,
}

/// Per-run asynchronous-optimization state owned by the engine.
pub(crate) struct AsyncOpt {
    pub service: OptService<OptJob, OptOutcome>,
    /// Block epochs: bumped on retirement / re-formation, checked at
    /// install.
    pub coord: Coordinator<Pc>,
    /// Seeds currently queued or in flight (suppresses duplicate
    /// submissions of the same candidate).
    pub pending: BTreeSet<Pc>,
    /// Accumulated `(p_enqueue, p_install, use_install)` drift points.
    pub drift: Vec<(f64, f64, f64)>,
}

impl AsyncOpt {
    /// Spawns the worker pool. Workers share the program (and its
    /// pre-decoded block cache) so they can compile region copies
    /// off-thread; with `fuse` set (the cached-fused backend) they also
    /// fuse each copy's body and compile the region's straight-line
    /// trace, so installation does zero compile work on the execution
    /// thread. The tracer, when attached, receives `opt_started` events
    /// from worker threads directly.
    pub(crate) fn new(
        workers: usize,
        program: Arc<Program>,
        predecoded: Arc<PredecodedProgram>,
        fuse: bool,
        tracer: Option<Arc<Tracer>>,
    ) -> AsyncOpt {
        #[cfg(not(feature = "trace"))]
        let _ = &tracer;
        let service = OptService::new(workers, QUEUE_CAPACITY, move |job: OptJob| {
            #[cfg(feature = "trace")]
            if let Some(t) = &tracer {
                t.emit(EventKind::OptStarted {
                    pc: job.seed as u64,
                });
            }
            let formed = form_region(&job.snapshot, &job.policy, job.seed);
            let mut chain: Vec<Arc<DecodedBlock>> = formed.as_ref().map_or_else(Vec::new, |f| {
                f.copies
                    .iter()
                    .filter_map(|&pc| predecoded.block(&program, pc))
                    .collect()
            });
            let mut trace = None;
            if fuse {
                if let Some(f) = &formed {
                    if chain.len() == f.copies.len() {
                        chain = chain.iter().map(|b| Arc::new(b.fused())).collect();
                        trace = compile_trace(&f.copies, &f.edges, &chain).map(Arc::new);
                    }
                }
            }
            OptOutcome {
                seed: job.seed,
                stamps: job.stamps,
                probs: job.probs,
                formed,
                chain,
                trace,
            }
        });
        AsyncOpt {
            service,
            coord: Coordinator::new(),
            pending: BTreeSet::new(),
            drift: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_profile::SuccSlot;

    struct Mock {
        blocks: BTreeMap<Pc, (Terminator, BlockRecord, u32)>,
    }

    impl BlockSource for Mock {
        fn terminator(&self, pc: Pc) -> Option<&Terminator> {
            self.blocks.get(&pc).map(|(t, _, _)| t)
        }
        fn record(&self, pc: Pc) -> Option<&BlockRecord> {
            self.blocks.get(&pc).map(|(_, r, _)| r)
        }
        fn block_len(&self, pc: Pc) -> Option<u32> {
            self.blocks.get(&pc).map(|(_, _, len)| *len)
        }
    }

    fn cond_block(taken: Pc, fallthrough: Pc, p_taken: f64) -> (Terminator, BlockRecord, u32) {
        let use_count = 1000u64;
        let taken_count = (p_taken * use_count as f64) as u64;
        let record = BlockRecord {
            len: 2,
            kind: Some(tpdbt_profile::TermKind::Cond),
            use_count,
            edges: vec![
                (SuccSlot::Taken, taken, taken_count),
                (SuccSlot::Fallthrough, fallthrough, use_count - taken_count),
            ],
        };
        (Terminator::Branch { taken, fallthrough }, record, 2)
    }

    #[test]
    fn snapshot_walks_successors_and_reports_probabilities() {
        let mut blocks = BTreeMap::new();
        blocks.insert(0, cond_block(0, 4, 0.9)); // self-loop latch
        blocks.insert(4, cond_block(0, 8, 0.25));
        // 8 is untranslated: absent from the mock.
        let mock = Mock { blocks };
        let snap = snapshot_neighborhood(&mock, 0, &RegionPolicy::default());
        let members: Vec<Pc> = snap.members().copied().collect();
        assert_eq!(members, vec![0, 4]);
        let probs = snap.probabilities();
        assert!((probs[&0] - 0.9).abs() < 1e-9);
        assert!((probs[&4] - 0.25).abs() < 1e-9);
        // The snapshot is a faithful BlockSource for formation.
        assert_eq!(snap.block_len(0), Some(2));
        assert!(snap.record(8).is_none());
    }

    #[test]
    fn snapshot_is_bounded() {
        // A long jump chain: the walk must stop at the cap, not swallow
        // the whole program.
        let mut blocks = BTreeMap::new();
        for pc in 0..10_000usize {
            let record = BlockRecord {
                len: 1,
                kind: Some(tpdbt_profile::TermKind::Jump),
                use_count: 1,
                edges: vec![(SuccSlot::Other(0), pc + 1, 1)],
            };
            blocks.insert(pc, (Terminator::Jump { target: pc + 1 }, record, 1));
        }
        let mock = Mock { blocks };
        let policy = RegionPolicy::default();
        let snap = snapshot_neighborhood(&mock, 0, &policy);
        assert_eq!(snap.members().count(), policy.max_region_blocks * 4 + 16);
    }
}
