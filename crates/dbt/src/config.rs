//! Translator configuration: profiling mode, region-formation policy,
//! execution backend, and the simulated cost model.

use crate::backend::Backend;

/// How the translator profiles and optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfilingMode {
    /// The paper's two-phase scheme: profile until the retranslation
    /// threshold, optimize once, freeze counters.
    TwoPhase,
    /// Never optimize: the whole run is the profiling phase. Produces
    /// the paper's `AVEP` (reference input) and `INIP(train)` (training
    /// input) profiles.
    NoOpt,
    /// The paper's future-work extension: counters keep counting after
    /// optimization and a region is re-formed when its entry block's
    /// use count doubles relative to formation time. Used for ablation.
    Continuous,
    /// The paper's §5 proposal "effectively monitoring region side
    /// exits to trigger retranslation and adaptation": a region whose
    /// side-exit rate exceeds [`AdaptPolicy::max_side_exit_rate`] is
    /// retired, its blocks re-profile from scratch, and a fresh region
    /// forms once they re-reach the threshold.
    Adaptive,
}

/// When the optimization phase runs relative to execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OptMode {
    /// The paper's model: the optimizer runs inline at the trigger
    /// point — execution stops, regions form, execution resumes. Every
    /// figure in the reproduction is produced in this mode; it is
    /// bitwise deterministic.
    #[default]
    Sync,
    /// Production decoupling: hot candidates are queued to background
    /// optimizer threads while execution (and profiling) continues, and
    /// finished regions are installed between guest blocks under
    /// epoch validation. Guest *output* is identical to sync; stats,
    /// figures, and the frozen initial profile legitimately differ
    /// because counters keep advancing until install — the drift the
    /// `Sd.IP` metric measures.
    Async,
}

impl OptMode {
    /// Both modes, for matrix-style tests and sweeps.
    pub const ALL: [OptMode; 2] = [OptMode::Sync, OptMode::Async];

    /// Short lowercase name (`"sync"` / `"async"`), stable for CLI and
    /// cache keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OptMode::Sync => "sync",
            OptMode::Async => "async",
        }
    }
}

impl std::fmt::Display for OptMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for OptMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sync" => Ok(OptMode::Sync),
            "async" => Ok(OptMode::Async),
            other => Err(format!("unknown opt mode `{other}` (sync|async)")),
        }
    }
}

/// Knobs for [`ProfilingMode::Adaptive`] side-exit monitoring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptPolicy {
    /// Minimum region entries before the side-exit rate is judged.
    pub min_entries: u64,
    /// Retire the region when `side_exits / entries` exceeds this.
    pub max_side_exit_rate: f64,
    /// Stop retiring regions rooted at the same entry after this many
    /// retirements — hysteresis so inherently-mixed branches (a stable
    /// 65/35 diamond exits often *by construction*) don't churn through
    /// endless retranslation.
    pub max_retirements_per_entry: u32,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        AdaptPolicy {
            min_entries: 64,
            max_side_exit_rate: 0.35,
            max_retirements_per_entry: 3,
        }
    }
}

/// Region-formation policy knobs (DESIGN.md ablation targets).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionPolicy {
    /// Minimum branch probability for extending the main trace — the
    /// "minimum branch probability" of trace-growing heuristics
    /// (Chang & Hwu use 70%; IA32EL-style translators are greedier).
    pub main_path_prob: f64,
    /// Minimum probability for including the unlikely arm of a hammock
    /// (if-then / if-else diamond) in the region.
    pub include_prob: f64,
    /// Maximum number of block copies per region.
    pub max_region_blocks: usize,
    /// Candidate-pool size that triggers the optimization phase
    /// ("when a sufficient number of blocks are registered").
    pub pool_trigger: usize,
}

impl Default for RegionPolicy {
    fn default() -> Self {
        RegionPolicy {
            main_path_prob: 0.55,
            include_prob: 0.20,
            max_region_blocks: 32,
            pool_trigger: 8,
        }
    }
}

/// Simulated cycle costs. Values are abstract machine cycles; only
/// their *ratios* matter for the Figure 17 shape (the paper's absolute
/// Itanium 2 timings are unavailable). Defaults are documented in
/// DESIGN.md and stress-tested for robustness to ±2× changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One-time fast-translation cost per instruction when a block is
    /// first seen (the profiling-phase quick translation).
    pub cold_translate_per_instr: u64,
    /// Execution cost per instruction in unoptimized (profiling-phase)
    /// code.
    pub unopt_exec_per_instr: u64,
    /// Cost of one profiling-counter increment (`use` or `taken`).
    pub profile_op_cost: u64,
    /// Block-dispatch cost per unoptimized block entry (translation
    /// cache lookup / chaining overhead).
    pub dispatch_cost: u64,
    /// Optimization (retranslation) cost per instruction of region code.
    pub opt_translate_per_instr: u64,
    /// Execution cost per instruction inside an optimized region.
    pub opt_exec_per_instr: u64,
    /// Penalty for leaving a region through a side exit (state
    /// reconciliation, cold target).
    pub side_exit_penalty: u64,
    /// Dispatch cost when entering an optimized region.
    pub region_entry_cost: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cold_translate_per_instr: 60,
            unopt_exec_per_instr: 4,
            profile_op_cost: 1,
            dispatch_cost: 2,
            opt_translate_per_instr: 500,
            opt_exec_per_instr: 2,
            side_exit_penalty: 16,
            region_entry_cost: 1,
        }
    }
}

/// Full translator configuration.
///
/// # Example
///
/// ```
/// use tpdbt_dbt::{DbtConfig, ProfilingMode};
///
/// let c = DbtConfig::two_phase(2000);
/// assert_eq!(c.threshold, 2000);
/// assert_eq!(c.mode, ProfilingMode::TwoPhase);
/// let avep = DbtConfig::no_opt();
/// assert_eq!(avep.mode, ProfilingMode::NoOpt);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DbtConfig {
    /// The retranslation threshold `T` (ignored in
    /// [`ProfilingMode::NoOpt`]).
    pub threshold: u64,
    /// Profiling/optimization mode.
    pub mode: ProfilingMode,
    /// Region-formation policy.
    pub policy: RegionPolicy,
    /// Simulated cost model.
    pub cost: CostModel,
    /// Side-exit monitoring policy (only consulted in
    /// [`ProfilingMode::Adaptive`]).
    pub adapt: AdaptPolicy,
    /// When set, the run records an interval profile snapshot every
    /// this many dynamic instructions (for offline phase detection à la
    /// Sherwood et al., the paper's reference \[16]). Meaningful in
    /// [`ProfilingMode::NoOpt`], where counters never freeze.
    pub interval: Option<u64>,
    /// Maximum dynamic guest instructions before the run aborts
    /// (defends against runaway workloads).
    pub fuel: u64,
    /// Which execution backend runs translated code. Never affects a
    /// run's observable results — see [`Backend`].
    pub backend: Backend,
    /// Whether the optimization phase runs inline ([`OptMode::Sync`],
    /// the paper's model) or on background threads ([`OptMode::Async`]).
    pub opt_mode: OptMode,
    /// Number of background optimizer threads (async mode only; sync
    /// mode ignores it). Not part of the fingerprint — like wall-clock
    /// scheduling, it cannot be told apart from run-to-run noise in an
    /// async run's results.
    pub opt_workers: usize,
}

impl DbtConfig {
    /// Two-phase configuration with retranslation threshold `threshold`
    /// and default policy/costs.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (the paper's baseline is `T = 1`:
    /// optimize everything executed at least once).
    #[must_use]
    pub fn two_phase(threshold: u64) -> Self {
        assert!(threshold > 0, "retranslation threshold must be at least 1");
        DbtConfig {
            threshold,
            mode: ProfilingMode::TwoPhase,
            policy: RegionPolicy::default(),
            cost: CostModel::default(),
            adapt: AdaptPolicy::default(),
            interval: None,
            fuel: tpdbt_vm::DEFAULT_FUEL,
            backend: Backend::default(),
            opt_mode: OptMode::Sync,
            opt_workers: 2,
        }
    }

    /// Profile-only configuration (no optimization ever) — produces
    /// `AVEP` / `INIP(train)` profiles.
    #[must_use]
    pub fn no_opt() -> Self {
        DbtConfig {
            mode: ProfilingMode::NoOpt,
            ..DbtConfig::two_phase(u64::MAX)
        }
    }

    /// Continuous-profiling configuration (ablation of the paper's
    /// future-work idea) with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    #[must_use]
    pub fn continuous(threshold: u64) -> Self {
        DbtConfig {
            mode: ProfilingMode::Continuous,
            ..DbtConfig::two_phase(threshold)
        }
    }

    /// Adaptive configuration (paper §5: side-exit-triggered
    /// retranslation) with the given threshold and default
    /// [`AdaptPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    #[must_use]
    pub fn adaptive(threshold: u64) -> Self {
        DbtConfig {
            mode: ProfilingMode::Adaptive,
            ..DbtConfig::two_phase(threshold)
        }
    }

    /// Replaces the region policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RegionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the fuel budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects when the optimization phase runs (inline or background).
    #[must_use]
    pub fn with_opt_mode(mut self, opt_mode: OptMode) -> Self {
        self.opt_mode = opt_mode;
        self
    }

    /// Sets the background optimizer thread count (minimum 1, async
    /// mode only).
    #[must_use]
    pub fn with_opt_workers(mut self, opt_workers: usize) -> Self {
        self.opt_workers = opt_workers.max(1);
        self
    }

    /// Enables interval profile recording every `instructions` dynamic
    /// instructions (phase detection input).
    ///
    /// # Panics
    ///
    /// Panics if `instructions == 0`.
    #[must_use]
    pub fn with_interval(mut self, instructions: u64) -> Self {
        assert!(instructions > 0, "interval must be positive");
        self.interval = Some(instructions);
        self
    }

    /// A stable 64-bit digest over every field that can change a run's
    /// observable result. The profile store (`tpdbt-store`) keys cached
    /// artifacts on it, so stale cache entries are detected whenever a
    /// policy knob, cost, or mode changes — two configs compare equal
    /// iff their fingerprints do (modulo hash collisions).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a 64, inlined so `tpdbt-dbt` stays free of a dependency
        // on the store crate (which depends on profile data produced
        // *by* the translator).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let mode_code: u8 = match self.mode {
            ProfilingMode::TwoPhase => 0,
            ProfilingMode::NoOpt => 1,
            ProfilingMode::Continuous => 2,
            ProfilingMode::Adaptive => 3,
        };
        eat(&[mode_code]);
        eat(&self.threshold.to_le_bytes());
        eat(&self.policy.main_path_prob.to_bits().to_le_bytes());
        eat(&self.policy.include_prob.to_bits().to_le_bytes());
        eat(&(self.policy.max_region_blocks as u64).to_le_bytes());
        eat(&(self.policy.pool_trigger as u64).to_le_bytes());
        eat(&self.cost.cold_translate_per_instr.to_le_bytes());
        eat(&self.cost.unopt_exec_per_instr.to_le_bytes());
        eat(&self.cost.profile_op_cost.to_le_bytes());
        eat(&self.cost.dispatch_cost.to_le_bytes());
        eat(&self.cost.opt_translate_per_instr.to_le_bytes());
        eat(&self.cost.opt_exec_per_instr.to_le_bytes());
        eat(&self.cost.side_exit_penalty.to_le_bytes());
        eat(&self.cost.region_entry_cost.to_le_bytes());
        eat(&self.adapt.min_entries.to_le_bytes());
        eat(&self.adapt.max_side_exit_rate.to_bits().to_le_bytes());
        eat(&u64::from(self.adapt.max_retirements_per_entry).to_le_bytes());
        eat(&self.interval.map_or(0, |i| i.wrapping_add(1)).to_le_bytes());
        eat(&self.fuel.to_le_bytes());
        // `backend` is deliberately NOT hashed: all three backends
        // (interp, cached, cached-fused) are bitwise result-identical
        // by construction (pinned by the differential proptest), so
        // runs under any backend share store entries.
        //
        // `opt_mode` IS result-affecting (async installs later, so the
        // frozen profile differs) — but it is hashed *asymmetrically*:
        // sync eats nothing, keeping every pre-existing sync fingerprint
        // byte-identical, while async folds in a marker byte so its
        // artifacts never alias a sync run's. `opt_workers` is not
        // hashed: an async run is a sample from a scheduling
        // distribution either way.
        if self.opt_mode == OptMode::Async {
            eat(&[0xA5]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_modes() {
        assert_eq!(DbtConfig::two_phase(5).mode, ProfilingMode::TwoPhase);
        assert_eq!(DbtConfig::no_opt().mode, ProfilingMode::NoOpt);
        assert_eq!(DbtConfig::continuous(5).mode, ProfilingMode::Continuous);
        assert_eq!(DbtConfig::continuous(5).threshold, 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = DbtConfig::two_phase(0);
    }

    #[test]
    fn builder_style_overrides() {
        let policy = RegionPolicy {
            max_region_blocks: 4,
            ..RegionPolicy::default()
        };
        let cost = CostModel {
            opt_exec_per_instr: 1,
            ..CostModel::default()
        };
        let c = DbtConfig::two_phase(10)
            .with_policy(policy)
            .with_cost(cost)
            .with_fuel(99);
        assert_eq!(c.policy.max_region_blocks, 4);
        assert_eq!(c.cost.opt_exec_per_instr, 1);
        assert_eq!(c.fuel, 99);
    }

    #[test]
    fn fingerprint_tracks_result_affecting_fields() {
        let base = DbtConfig::two_phase(100);
        assert_eq!(base.fingerprint(), DbtConfig::two_phase(100).fingerprint());
        assert_ne!(base.fingerprint(), DbtConfig::two_phase(200).fingerprint());
        assert_ne!(base.fingerprint(), DbtConfig::continuous(100).fingerprint());
        assert_ne!(base.fingerprint(), base.with_fuel(42).fingerprint());
        let policy = RegionPolicy {
            main_path_prob: 0.60,
            ..RegionPolicy::default()
        };
        assert_ne!(base.fingerprint(), base.with_policy(policy).fingerprint());
        let cost = CostModel {
            opt_exec_per_instr: 3,
            ..CostModel::default()
        };
        assert_ne!(base.fingerprint(), base.with_cost(cost).fingerprint());
        assert_ne!(base.fingerprint(), base.with_interval(1).fingerprint());
    }

    #[test]
    fn fingerprint_ignores_the_backend() {
        let base = DbtConfig::two_phase(100);
        assert_eq!(base.backend, Backend::Cached);
        for backend in Backend::ALL {
            assert_eq!(
                base.fingerprint(),
                base.with_backend(backend).fingerprint(),
                "backends are result-identical and must share store entries"
            );
            assert_eq!(base.with_backend(backend).backend, backend);
        }
    }

    #[test]
    fn opt_mode_parses_and_round_trips() {
        for mode in OptMode::ALL {
            assert_eq!(mode.name().parse::<OptMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.name());
        }
        assert!("background".parse::<OptMode>().is_err());
        assert_eq!(OptMode::default(), OptMode::Sync);
    }

    #[test]
    fn fingerprint_is_asymmetric_over_opt_mode() {
        let base = DbtConfig::two_phase(100);
        assert_eq!(base.opt_mode, OptMode::Sync);
        // Sync must hash exactly as before the field existed, so every
        // cached sync artifact stays valid.
        assert_eq!(
            base.fingerprint(),
            base.with_opt_mode(OptMode::Sync).fingerprint()
        );
        // Async results differ (later installs, drifted frozen profile)
        // and must not alias sync store entries.
        assert_ne!(
            base.fingerprint(),
            base.with_opt_mode(OptMode::Async).fingerprint()
        );
        // Worker count is scheduling, not configuration, for caching.
        let a = base.with_opt_mode(OptMode::Async);
        assert_eq!(a.fingerprint(), a.with_opt_workers(7).fingerprint());
        assert_eq!(a.with_opt_workers(0).opt_workers, 1, "clamped to 1");
    }

    #[test]
    fn default_policy_is_sane() {
        let p = RegionPolicy::default();
        assert!(p.main_path_prob > 0.5);
        assert!(p.include_prob < p.main_path_prob);
        assert!(p.max_region_blocks >= 2);
        assert!(p.pool_trigger >= 1);
    }
}
