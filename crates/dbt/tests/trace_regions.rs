//! Regression suite for trace-compiled regions (`--backend
//! cached-fused`): a reform or retirement mid-run must never leave a
//! stale trace installed — in sync *and* async optimization modes.
//!
//! The hazard: a region's chain and its compiled trace are two views
//! of the same copy list. If retirement cleared the chain but not the
//! trace (or a re-formation swapped the chain under an old trace), the
//! engine would keep executing retired code — observable as diverging
//! outputs, stats, or profile counters against the interpreter
//! backend. The tests pin both the mechanism (chain and trace live in
//! one atomically-published slot) and the end-to-end behavior (bitwise
//! parity through reform/retire storms under both opt modes).

use std::sync::Arc;

use tpdbt_dbt::{Backend, CachedBackend, Dbt, DbtConfig, ExecBackend, OptMode, RegionPolicy};
use tpdbt_isa::{decode_block, Cond, Program, ProgramBuilder, Reg};
use tpdbt_profile::{RegionDump, RegionEdge, RegionKind, SuccSlot};

fn loop_program() -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    b.movi(Reg::new(1), 3);
    b.bind(top).unwrap();
    b.addi(Reg::new(0), Reg::new(0), 5);
    b.out(Reg::new(0));
    b.br_imm(Cond::Lt, Reg::new(0), 20, top);
    b.halt();
    b.build().unwrap()
}

fn loop_dump(copies: Vec<usize>) -> RegionDump {
    let edges = (0..copies.len())
        .map(|i| RegionEdge {
            from: i,
            slot: SuccSlot::Taken,
            to: if i + 1 < copies.len() { i + 1 } else { 0 },
        })
        .collect();
    let tail = copies.len() - 1;
    RegionDump {
        id: 0,
        kind: RegionKind::Loop,
        copies,
        edges,
        tail,
    }
}

/// Mechanism, retirement: after `retire_region` the backend reports no
/// trace, while an execution that entered the region *before* the
/// retirement keeps its own (still-consistent) snapshot.
#[test]
fn retirement_clears_trace_and_chain_in_one_publication() {
    let p = loop_program();
    let mut backend = CachedBackend::new_fused(p.len(), None);
    for pc in [0, 1] {
        backend.on_translate(&p, &decode_block(&p, pc).unwrap());
    }
    backend.install_region(0, &loop_dump(vec![1]));
    // An in-flight traced execution holds an Arc snapshot...
    let in_flight = backend.region_trace(0).expect("installed");
    backend.retire_region(0);
    // ...the table shows nothing stale...
    assert!(
        backend.region_trace(0).is_none(),
        "stale trace survived retire"
    );
    assert!(
        backend.region_code(0).is_none_or(|c| c.is_empty()),
        "stale chain survived retire"
    );
    // ...and the snapshot stays internally consistent (Arc-held).
    assert_eq!(in_flight.starts(), vec![1]);
}

/// Mechanism, re-formation: installing a new shape over a live region
/// replaces chain and trace together; no interleaving can pair the new
/// chain with the old trace.
#[test]
fn reform_swaps_chain_and_trace_atomically() {
    let p = loop_program();
    let mut backend = CachedBackend::new_fused(p.len(), None);
    for pc in [0, 1] {
        backend.on_translate(&p, &decode_block(&p, pc).unwrap());
    }
    backend.install_region(0, &loop_dump(vec![1]));
    let old = backend.region_trace(0).expect("v1 installed");
    // Reform to a two-copy unrolled shape.
    backend.install_region(0, &loop_dump(vec![1, 1]));
    let new = backend.region_trace(0).expect("v2 installed");
    assert_eq!(new.len(), 2, "trace tracks the reformed copy list");
    assert_eq!(
        backend.region_code(0).unwrap().chain.len(),
        2,
        "chain reformed in the same publication"
    );
    assert_eq!(old.len(), 1, "in-flight snapshot of v1 unchanged");
}

fn phase_flip_program() -> Program {
    let mut b = ProgramBuilder::new();
    let (i, x, half) = (Reg::new(0), Reg::new(1), Reg::new(2));
    b.movi(half, 60_000);
    let head = b.fresh_label("head");
    let then = b.fresh_label("then");
    let join = b.fresh_label("join");
    b.movi(i, 0);
    b.bind(head).unwrap();
    b.br_reg(Cond::Lt, i, half, then);
    b.addi(x, x, 2);
    b.jmp(join);
    b.bind(then).unwrap();
    b.addi(x, x, 1);
    b.bind(join).unwrap();
    b.addi(i, i, 1);
    b.br_imm(Cond::Lt, i, 120_000, head);
    b.halt();
    b.build().unwrap()
}

/// End to end, sync: adaptive retirement fires mid-run under the
/// fused backend and every observable stays bitwise identical to the
/// interpreter backend. A stale trace executing after its region
/// retired would diverge here (wrong dispatch, wrong stats).
#[test]
fn sync_retirement_mid_run_stays_bitwise_identical() {
    let p = phase_flip_program();
    let cfg = DbtConfig::adaptive(500);
    let interp = Dbt::new(cfg.with_backend(Backend::Interp))
        .run(&p, &[])
        .unwrap();
    let fused = Dbt::new(cfg.with_backend(Backend::CachedFused))
        .run(&p, &[])
        .unwrap();
    assert!(
        fused.stats.retirements > 0,
        "a retirement must fire mid-run"
    );
    assert_eq!(interp.output, fused.output);
    assert_eq!(interp.stats, fused.stats);
    assert_eq!(interp.inip.blocks, fused.inip.blocks);
    assert_eq!(interp.inip.regions, fused.inip.regions);
    assert_eq!(interp.intervals, fused.intervals);
}

/// End to end, sync: continuous-mode re-formations replace installed
/// fused chains mid-run; still bitwise identical.
#[test]
fn sync_reform_mid_run_stays_bitwise_identical() {
    let p = phase_flip_program();
    let cfg = DbtConfig::continuous(1000);
    let interp = Dbt::new(cfg.with_backend(Backend::Interp))
        .run(&p, &[])
        .unwrap();
    let fused = Dbt::new(cfg.with_backend(Backend::CachedFused))
        .run(&p, &[])
        .unwrap();
    assert!(
        fused.stats.opt_invocations > fused.stats.regions_formed,
        "a reform must fire mid-run"
    );
    assert_eq!(interp.output, fused.output);
    assert_eq!(interp.stats, fused.stats);
    assert_eq!(interp.inip.blocks, fused.inip.blocks);
}

/// End to end, async: worker-compiled traces install under epoch
/// validation while adaptive retirement invalidates mid-run; guest
/// output stays transparent and the optimizer books balance.
#[test]
fn async_retirement_mid_run_stays_output_transparent() {
    let p = phase_flip_program();
    let reference = tpdbt_vm::run_collect(&p, &[]).unwrap();
    let cfg = DbtConfig::adaptive(500)
        .with_opt_mode(OptMode::Async)
        .with_backend(Backend::CachedFused);
    let out = Dbt::new(cfg).run(&p, &[]).unwrap();
    assert_eq!(out.output, reference, "stale trace diverged guest output");
    assert_eq!(
        out.stats.opt_enqueued,
        out.stats.opt_installed + out.stats.opt_discarded,
        "unbalanced optimizer books: {:?}",
        out.stats
    );
}

/// End to end, async: background-formed regions (with worker-compiled
/// traces) actually install on a long-running hot loop, and output
/// stays transparent.
#[test]
fn async_installs_worker_compiled_traces() {
    let mut b = ProgramBuilder::new();
    let r = Reg::new(0);
    tpdbt_isa::structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 200_000, |b| {
        b.addi(Reg::new(1), Reg::new(1), 1);
    })
    .unwrap();
    b.out(Reg::new(1));
    b.halt();
    let p = b.build().unwrap();
    let reference = tpdbt_vm::run_collect(&p, &[]).unwrap();
    let policy = RegionPolicy {
        pool_trigger: 1,
        ..RegionPolicy::default()
    };
    let cfg = DbtConfig::two_phase(100)
        .with_policy(policy)
        .with_opt_mode(OptMode::Async)
        .with_backend(Backend::CachedFused);
    let out = Dbt::new(cfg).run(&p, &[]).unwrap();
    assert_eq!(out.output, reference);
    assert!(
        out.stats.opt_installed > 0,
        "a 200k-iteration loop must install its background region: {:?}",
        out.stats
    );
}

/// The in-flight snapshot degenerate case: retiring a region that was
/// never installed is a no-op, and re-installing after retirement
/// produces a fresh, correct trace.
#[test]
fn retire_then_reinstall_produces_a_fresh_trace() {
    let p = loop_program();
    let mut backend = CachedBackend::new_fused(p.len(), None);
    backend.retire_region(7); // never installed: must not panic
    assert!(backend.region_trace(7).is_none());
    for pc in [0, 1] {
        backend.on_translate(&p, &decode_block(&p, pc).unwrap());
    }
    backend.install_region(0, &loop_dump(vec![1]));
    backend.retire_region(0);
    backend.install_region(0, &loop_dump(vec![1, 1]));
    let trace = backend.region_trace(0).expect("reinstall compiles");
    assert_eq!(trace.starts(), vec![1, 1]);
    let _ = Arc::strong_count(&trace);
}
