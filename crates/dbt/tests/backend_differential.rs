//! Differential harness for the execution backends.
//!
//! The correctness contract of the translation cache — and of
//! superinstruction fusion and trace compilation on top of it — is
//! *bitwise transparency*: for any guest program, mode, and threshold,
//! the `cached` and `cached-fused` backends must produce exactly the
//! architectural state, outputs, run statistics, and profile counters
//! of the reference interpreter backend. These tests pin that contract
//! with generated programs (proptest) and with exact-boundary
//! regressions at the freeze/reform events that drive
//! translation-cache inserts, installs, and invalidations.

use proptest::prelude::*;

use tpdbt_dbt::{
    Backend, CachedBackend, Dbt, DbtConfig, ExecBackend, ExecSite, InterpBackend, OptMode,
    RegionPolicy, RunOutcome,
};
use tpdbt_isa::{decode_block, structured, Cond, FReg, Program, ProgramBuilder, Reg};
use tpdbt_vm::{Flow, Machine};

/// A random structured statement. Richer than the ISA-layer generator:
/// includes calls, memory and float traffic, and input-driven branches
/// so every terminator kind and trap-free op reaches both backends.
#[derive(Clone, Debug)]
enum Stmt {
    HotLoop { trips: i64, body_ops: u8 },
    IfElse { bias_imm: i64 },
    Switch { arms: u8 },
    MemOps { slots: u8 },
    FloatOps { n: u8 },
    CallLeaf { times: i64 },
    ReadInput,
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (20i64..200, 0u8..4).prop_map(|(trips, body_ops)| Stmt::HotLoop { trips, body_ops }),
        (0i64..10).prop_map(|bias_imm| Stmt::IfElse { bias_imm }),
        (1u8..5).prop_map(|arms| Stmt::Switch { arms }),
        (1u8..8).prop_map(|slots| Stmt::MemOps { slots }),
        (1u8..5).prop_map(|n| Stmt::FloatOps { n }),
        (1i64..60).prop_map(|times| Stmt::CallLeaf { times }),
        Just(Stmt::ReadInput),
    ]
}

fn build(stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::named("diff");
    b.reserve_mem(16);
    b.reserve_fmem(4);
    let acc = Reg::new(3);
    let tmp = Reg::new(4);
    let leaf = b.fresh_label("leaf");
    let start = b.fresh_label("start");
    b.jmp(start);
    // fn leaf(): acc = acc * 3 + 1
    b.bind(leaf).unwrap();
    b.muli(acc, acc, 3);
    b.addi(acc, acc, 1);
    b.ret();
    b.bind(start).unwrap();
    b.movi(acc, 0);
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::HotLoop { trips, body_ops } => {
                let ctr = Reg::new(10 + (i % 4) as u8);
                structured::counted_loop(&mut b, ctr, 0, 1, Cond::Lt, *trips, |b| {
                    for _ in 0..*body_ops {
                        b.addi(acc, acc, 1);
                    }
                })
                .unwrap();
            }
            Stmt::IfElse { bias_imm } => {
                b.and(tmp, acc, 7);
                structured::if_else(
                    &mut b,
                    Cond::Lt,
                    tmp,
                    *bias_imm,
                    |b| b.addi(acc, acc, 2),
                    |b| b.subi(acc, acc, 1),
                )
                .unwrap();
            }
            Stmt::Switch { arms } => {
                b.and(tmp, acc, 15);
                let arms: Vec<structured::Arm> = (0..*arms)
                    .map(|k| {
                        Box::new(move |b: &mut ProgramBuilder| b.addi(acc, acc, i64::from(k)))
                            as structured::Arm
                    })
                    .collect();
                structured::switch(&mut b, tmp, arms).unwrap();
            }
            Stmt::MemOps { slots } => {
                for s in 0..*slots {
                    b.movi(tmp, i64::from(s));
                    b.store(acc, tmp, 0);
                    b.load(Reg::new(5), tmp, 0);
                    b.add(acc, acc, Reg::new(5));
                }
            }
            Stmt::FloatOps { n } => {
                for _ in 0..*n {
                    b.itof(FReg::new(0), acc);
                    b.fmovi(FReg::new(1), 1.5);
                    b.fmul(FReg::new(2), FReg::new(0), FReg::new(1));
                    b.ftoi(acc, FReg::new(2));
                }
            }
            Stmt::CallLeaf { times } => {
                let ctr = Reg::new(14 + (i % 2) as u8);
                structured::counted_loop(&mut b, ctr, 0, 1, Cond::Lt, *times, |b| {
                    b.call(leaf);
                })
                .unwrap();
            }
            Stmt::ReadInput => {
                b.input(tmp);
                b.add(acc, acc, tmp);
            }
        }
        b.out(acc);
    }
    b.out(acc);
    b.halt();
    b.build().expect("structured composition always validates")
}

fn run_with(config: DbtConfig, backend: Backend, p: &Program, input: &[i64]) -> RunOutcome {
    Dbt::new(config.with_backend(backend))
        .run(p, input)
        .expect("generated programs are trap-free")
}

/// Full observable-result equality of every backend against the
/// reference interpreter backend.
fn assert_identical(config: DbtConfig, p: &Program, input: &[i64]) {
    let interp = run_with(config, Backend::Interp, p, input);
    for backend in [Backend::Cached, Backend::CachedFused] {
        let cached = run_with(config, backend, p, input);
        let ctx = format!(
            "{backend} vs interp, mode {:?} T={}",
            config.mode, config.threshold
        );
        assert_eq!(interp.output, cached.output, "output diverged: {ctx}");
        assert_eq!(interp.stats, cached.stats, "stats diverged: {ctx}");
        assert_eq!(
            interp.inip.blocks, cached.inip.blocks,
            "profile counters diverged: {ctx}"
        );
        assert_eq!(
            interp.inip.regions, cached.inip.regions,
            "regions diverged: {ctx}"
        );
        assert_eq!(interp.inip.cycles, cached.inip.cycles, "cycles: {ctx}");
        assert_eq!(
            interp.inip.profiling_ops, cached.inip.profiling_ops,
            "profiling ops: {ctx}"
        );
        assert_eq!(
            interp.intervals, cached.intervals,
            "interval snapshots diverged: {ctx}"
        );
    }
    // And all are transparent against the raw interpreter.
    let reference = tpdbt_vm::run_collect(p, input).expect("trap-free");
    assert_eq!(interp.output, reference, "translation transparency");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole invariant: on arbitrary generated programs, every
    /// mode produces bitwise-identical outputs, stats, profile
    /// counters, regions, and interval snapshots on both backends.
    #[test]
    fn backends_are_bitwise_identical(
        stmts in prop::collection::vec(arb_stmt(), 1..8),
        input in prop::collection::vec(-50i64..50, 0..8),
        t in 1u64..40,
    ) {
        let p = build(&stmts);
        assert_identical(DbtConfig::no_opt(), &p, &input);
        assert_identical(DbtConfig::two_phase(t), &p, &input);
        assert_identical(DbtConfig::continuous(t), &p, &input);
        assert_identical(DbtConfig::adaptive(t), &p, &input);
    }

    /// `--opt-mode sync` is the identity: explicitly selecting it
    /// changes nothing, bitwise, anywhere — outputs, stats, profile
    /// counters, regions, intervals — in any profiling mode, on either
    /// backend. This is the guarantee that lets async ship without
    /// perturbing a single existing figure.
    #[test]
    fn opt_mode_sync_is_bitwise_identical_to_default(
        stmts in prop::collection::vec(arb_stmt(), 1..6),
        input in prop::collection::vec(-50i64..50, 0..6),
        t in 1u64..40,
    ) {
        let p = build(&stmts);
        for cfg in [
            DbtConfig::no_opt(),
            DbtConfig::two_phase(t),
            DbtConfig::continuous(t),
            DbtConfig::adaptive(t),
        ] {
            for backend in Backend::ALL {
                let base = run_with(cfg, backend, &p, &input);
                let explicit = run_with(cfg.with_opt_mode(OptMode::Sync), backend, &p, &input);
                prop_assert_eq!(&base.output, &explicit.output);
                prop_assert_eq!(&base.stats, &explicit.stats);
                prop_assert_eq!(&base.inip.blocks, &explicit.inip.blocks);
                prop_assert_eq!(&base.inip.regions, &explicit.inip.regions);
                prop_assert_eq!(&base.intervals, &explicit.intervals);
                prop_assert!(explicit.drift.is_empty(), "sync never records drift");
            }
        }
    }

    /// Async optimization must be *output*-transparent in every
    /// profiling mode on both backends. Stats and profile counters may
    /// legitimately differ from sync — counters freeze at install, not
    /// at trigger — but the guest's architectural results may not, and
    /// the enqueue/install/discard books must balance.
    #[test]
    fn opt_mode_async_preserves_guest_output(
        stmts in prop::collection::vec(arb_stmt(), 1..6),
        input in prop::collection::vec(-50i64..50, 0..6),
        t in 1u64..40,
    ) {
        let p = build(&stmts);
        let reference = tpdbt_vm::run_collect(&p, &input).expect("trap-free");
        for cfg in [
            DbtConfig::no_opt(),
            DbtConfig::two_phase(t),
            DbtConfig::continuous(t),
            DbtConfig::adaptive(t),
        ] {
            for backend in Backend::ALL {
                let out = run_with(cfg.with_opt_mode(OptMode::Async), backend, &p, &input);
                prop_assert_eq!(
                    &out.output, &reference,
                    "async diverged from raw interpreter: mode {:?} backend {} T={}",
                    cfg.mode, backend, t
                );
                prop_assert_eq!(
                    out.stats.opt_enqueued,
                    out.stats.opt_installed + out.stats.opt_discarded,
                    "unbalanced optimizer books: {:?}", out.stats
                );
            }
        }
    }

    /// Architectural state, block by block: walking a whole program
    /// through the two backends in lockstep keeps the machines
    /// bitwise-equal after every single block execution.
    #[test]
    fn lockstep_walk_keeps_machines_bitwise_equal(
        stmts in prop::collection::vec(arb_stmt(), 1..6),
        input in prop::collection::vec(-50i64..50, 0..6),
    ) {
        let p = build(&stmts);
        let mut interp = InterpBackend::new();
        let mut cached = CachedBackend::new(p.len(), None);
        let mut mi = Machine::new(&p, &input);
        let mut mc = mi.clone();
        let mut pc = p.entry();
        let mut halted = false;
        for step_count in 0..200_000u32 {
            let block = decode_block(&p, pc).expect("pc in range");
            cached.on_translate(&p, &block);
            let fi = interp
                .exec_block(&p, block.start, block.end, ExecSite::Unopt, &mut mi)
                .expect("trap-free");
            let fc = cached
                .exec_block(&p, block.start, block.end, ExecSite::Unopt, &mut mc)
                .expect("trap-free");
            prop_assert_eq!(fi, fc, "flow diverged at pc {} (block #{})", pc, step_count);
            prop_assert_eq!(&mi, &mc, "machine diverged at pc {} (block #{})", pc, step_count);
            match fi {
                Flow::Halted => {
                    halted = true;
                    break;
                }
                Flow::Jump { target, .. } => pc = target,
                Flow::Next => pc = block.end,
            }
        }
        prop_assert!(halted, "generated program did not halt within the walk budget");
    }
}

/// Boundary regression, both backends: the pool-full path freezes a
/// region seed at exactly `use == T` — i.e. the translation-cache
/// entry registers, the optimizer runs, and the counter freezes in the
/// same step its use count reaches the threshold.
#[test]
fn cache_entry_registers_and_freezes_at_exactly_t_on_both_backends() {
    let p = hot_loop(10_000);
    let t = 100;
    let policy = RegionPolicy {
        pool_trigger: 1,
        ..RegionPolicy::default()
    };
    for backend in Backend::ALL {
        let cfg = DbtConfig::two_phase(t)
            .with_policy(policy)
            .with_backend(backend);
        let out = Dbt::new(cfg).run(&p, &[]).unwrap();
        assert!(!out.inip.regions.is_empty(), "{backend}");
        for region in &out.inip.regions {
            let rec = out.inip.block(region.entry_pc()).unwrap();
            assert_eq!(
                rec.use_count, t,
                "{backend}: pool-full seed must freeze at T"
            );
        }
    }
}

/// Boundary regression, both backends: the registered-twice path
/// freezes the triggering block at exactly `use == 2T`.
#[test]
fn registered_twice_freezes_at_exactly_2t_on_both_backends() {
    let p = hot_loop(10_000);
    let t = 100;
    for backend in Backend::ALL {
        let out = Dbt::new(DbtConfig::two_phase(t).with_backend(backend))
            .run(&p, &[])
            .unwrap();
        assert_eq!(out.inip.regions.len(), 1, "{backend}");
        let rec = out.inip.block(out.inip.regions[0].entry_pc()).unwrap();
        assert_eq!(
            rec.use_count,
            2 * t,
            "{backend}: registered-twice trigger must freeze at exactly 2T"
        );
    }
}

/// Boundary regression, both backends: continuous-mode re-formation
/// replaces a chained region in place (the backend re-installs its
/// chain) and adaptive-mode retirement invalidates it — and in both
/// cases results stay identical across backends.
#[test]
fn chained_regions_survive_reform_and_retirement_identically() {
    let p = phase_flip_program();
    for backend in [Backend::Cached, Backend::CachedFused] {
        // Continuous: regions re-form when the entry's use count
        // doubles.
        let cont_i = run_with(DbtConfig::continuous(1000), Backend::Interp, &p, &[]);
        let cont_c = run_with(DbtConfig::continuous(1000), backend, &p, &[]);
        assert!(
            cont_c.stats.opt_invocations > cont_c.stats.regions_formed,
            "{backend}: a reform must fire"
        );
        assert_eq!(cont_i.output, cont_c.output, "{backend}");
        assert_eq!(cont_i.stats, cont_c.stats, "{backend}");
        assert_eq!(cont_i.inip.blocks, cont_c.inip.blocks, "{backend}");
        // Adaptive: the stale region is retired (its chain — and under
        // cached-fused, its trace — evicted) and a fresh one forms;
        // still bitwise-identical.
        let ad_i = run_with(DbtConfig::adaptive(500), Backend::Interp, &p, &[]);
        let ad_c = run_with(DbtConfig::adaptive(500), backend, &p, &[]);
        assert!(
            ad_c.stats.retirements > 0,
            "{backend}: a retirement must fire"
        );
        assert_eq!(ad_i.output, ad_c.output, "{backend}");
        assert_eq!(ad_i.stats, ad_c.stats, "{backend}");
        assert_eq!(ad_i.inip.blocks, ad_c.inip.blocks, "{backend}");
        assert_eq!(ad_i.inip.regions, ad_c.inip.regions, "{backend}");
    }
}

fn hot_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new(0);
    structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, iters, |_| {}).unwrap();
    b.halt();
    b.build().unwrap()
}

/// A loop whose likely branch direction flips halfway through the run.
fn phase_flip_program() -> Program {
    let mut b = ProgramBuilder::new();
    let (i, x, half) = (Reg::new(0), Reg::new(1), Reg::new(2));
    b.movi(half, 60_000);
    let head = b.fresh_label("head");
    let then = b.fresh_label("then");
    let join = b.fresh_label("join");
    b.movi(i, 0);
    b.bind(head).unwrap();
    b.br_reg(Cond::Lt, i, half, then);
    b.addi(x, x, 2);
    b.jmp(join);
    b.bind(then).unwrap();
    b.addi(x, x, 1);
    b.bind(join).unwrap();
    b.addi(i, i, 1);
    b.br_imm(Cond::Lt, i, 120_000, head);
    b.halt();
    b.build().unwrap()
}
