//! Edge-case integration tests for the translator engine: region
//! execution around calls, switches, returns, overlapping blocks, and
//! degenerate thresholds.

use tpdbt_dbt::{Dbt, DbtConfig, RegionPolicy};
use tpdbt_isa::{structured, Cond, Program, ProgramBuilder, Reg};
use tpdbt_profile::TermKind;

fn check_transparent(p: &Program, input: &[i64], configs: &[DbtConfig]) -> Vec<i64> {
    let expected = tpdbt_vm::run_collect(p, input).unwrap();
    for config in configs {
        let out = Dbt::new(*config).run(p, input).unwrap();
        assert_eq!(
            out.output, expected,
            "mode {:?} T={}",
            config.mode, config.threshold
        );
    }
    expected
}

fn all_modes(t: u64) -> Vec<DbtConfig> {
    vec![
        DbtConfig::no_opt(),
        DbtConfig::two_phase(t),
        DbtConfig::continuous(t),
        DbtConfig::adaptive(t),
    ]
}

/// A hot loop whose body calls a function: regions stop at the call but
/// execution through call/ret stays exact.
#[test]
fn calls_inside_hot_loops() {
    let mut b = ProgramBuilder::new();
    let f = b.fresh_label("f");
    let (i, acc) = (Reg::new(0), Reg::new(1));
    let top = b.fresh_label("top");
    let done = b.fresh_label("done");
    b.movi(i, 0);
    b.bind(top).unwrap();
    b.call(f);
    b.addi(i, i, 1);
    b.br_imm(Cond::Lt, i, 20_000, top);
    b.jmp(done);
    b.bind(f).unwrap();
    b.add(acc, acc, i);
    b.ret();
    b.bind(done).unwrap();
    b.out(acc);
    b.halt();
    let p = b.build().unwrap();
    check_transparent(&p, &[], &all_modes(50));
    // The loop is hot enough to form at least one region.
    let out = Dbt::new(DbtConfig::two_phase(50)).run(&p, &[]).unwrap();
    assert!(out.stats.regions_formed > 0);
    // The call-terminated block was profiled as a call.
    assert!(out
        .inip
        .blocks
        .values()
        .any(|r| r.kind == Some(TermKind::Call)));
}

/// Hot switch dispatch: the jump table terminates region growth but
/// the arms themselves become regions.
#[test]
fn switch_dispatch_regions() {
    let mut b = ProgramBuilder::new();
    let (i, sel, acc) = (Reg::new(0), Reg::new(1), Reg::new(2));
    let top = b.fresh_label("top");
    let done = b.fresh_label("done");
    b.movi(i, 0);
    b.bind(top).unwrap();
    b.and(sel, i, 3);
    structured::switch(
        &mut b,
        sel,
        (0..4)
            .map(|k| {
                Box::new(move |b: &mut ProgramBuilder| {
                    b.addi(acc, acc, k + 1);
                }) as structured::Arm
            })
            .collect(),
    )
    .unwrap();
    b.addi(i, i, 1);
    b.br_imm(Cond::Lt, i, 30_000, top);
    b.jmp(done);
    b.bind(done).unwrap();
    b.out(acc);
    b.halt();
    let p = b.build().unwrap();
    check_transparent(&p, &[], &all_modes(100));
    let out = Dbt::new(DbtConfig::two_phase(100)).run(&p, &[]).unwrap();
    // Every switch-kind block's edges sum to its use count, and the
    // hot dispatch block observed all four targets.
    let switch_recs: Vec<_> = out
        .inip
        .blocks
        .values()
        .filter(|r| r.kind == Some(TermKind::Switch))
        .collect();
    assert!(!switch_recs.is_empty());
    for rec in &switch_recs {
        let total: u64 = rec.edges.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, rec.use_count);
    }
    assert!(
        switch_recs.iter().any(|r| r.edges.len() == 4),
        "some dispatch block must see all 4 arms: {switch_recs:?}"
    );
}

/// Jumping into the interior of an already-translated block creates an
/// overlapping block; both must profile and execute correctly.
#[test]
fn overlapping_blocks_under_translation() {
    let mut b = ProgramBuilder::new();
    let (i, acc) = (Reg::new(0), Reg::new(1));
    let top = b.fresh_label("top");
    let mid = b.fresh_label("mid");
    let done = b.fresh_label("done");
    b.movi(i, 0);
    b.bind(top).unwrap();
    b.addi(acc, acc, 7); // only on the long path
    b.bind(mid).unwrap();
    b.addi(acc, acc, 1);
    b.addi(i, i, 1);
    // Alternate between entering at top and at mid.
    b.and(Reg::new(2), i, 1);
    b.br_imm(Cond::Eq, Reg::new(2), 0, top);
    b.br_imm(Cond::Lt, i, 10_000, mid);
    b.jmp(done);
    b.bind(done).unwrap();
    b.out(acc);
    b.halt();
    let p = b.build().unwrap();
    check_transparent(&p, &[], &all_modes(25));
}

/// The paper's base configuration T = 1: optimize everything executed
/// once — regions form from single-sample probabilities and execution
/// stays exact.
#[test]
fn threshold_one_is_the_paper_base() {
    let mut b = ProgramBuilder::new();
    let r = Reg::new(0);
    structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 5_000, |b| {
        b.addi(Reg::new(1), Reg::new(1), 1);
    })
    .unwrap();
    b.out(Reg::new(1));
    b.halt();
    let p = b.build().unwrap();
    check_transparent(&p, &[], &all_modes(1));
    let out = Dbt::new(DbtConfig::two_phase(1)).run(&p, &[]).unwrap();
    assert!(out.stats.regions_formed > 0, "T=1 must optimize");
}

/// pool_trigger = 1 runs the optimizer on every registration; regions
/// still form correctly and execution stays exact.
#[test]
fn eager_pool_trigger() {
    let mut b = ProgramBuilder::new();
    let r = Reg::new(0);
    structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 5_000, |b| {
        structured::if_then(b, Cond::Eq, r, 250, |b| b.out(r)).unwrap();
    })
    .unwrap();
    b.halt();
    let p = b.build().unwrap();
    let policy = RegionPolicy {
        pool_trigger: 1,
        ..RegionPolicy::default()
    };
    let cfg = DbtConfig::two_phase(10).with_policy(policy);
    let expected = tpdbt_vm::run_collect(&p, &[]).unwrap();
    let out = Dbt::new(cfg).run(&p, &[]).unwrap();
    assert_eq!(out.output, expected);
    assert!(out.stats.opt_invocations >= out.stats.regions_formed);
}

/// Tiny max_region_blocks degenerates regions to single blocks without
/// breaking anything.
#[test]
fn single_block_regions() {
    let mut b = ProgramBuilder::new();
    let r = Reg::new(0);
    structured::counted_loop(&mut b, r, 0, 1, Cond::Lt, 3_000, |_| {}).unwrap();
    b.halt();
    let p = b.build().unwrap();
    let policy = RegionPolicy {
        max_region_blocks: 1,
        ..RegionPolicy::default()
    };
    let cfg = DbtConfig::two_phase(10).with_policy(policy);
    let out = Dbt::new(cfg).run(&p, &[]).unwrap();
    for region in &out.inip.regions {
        assert_eq!(region.copies.len(), 1);
    }
    // A single-block loop region still loops back to itself.
    assert!(out.stats.loop_backs > 0 || out.inip.regions.is_empty());
}

/// Recursion through regions: the call stack is balanced whatever the
/// mode.
#[test]
fn recursion_is_transparent() {
    let mut b = ProgramBuilder::new();
    let fib = b.fresh_label("fib");
    let (n, acc, tmp) = (Reg::new(0), Reg::new(1), Reg::new(2));
    // Iteratively call a recursive accumulator on 0..2000.
    let top = b.fresh_label("top");
    let done = b.fresh_label("done");
    b.movi(Reg::new(5), 0);
    b.bind(top).unwrap();
    b.and(n, Reg::new(5), 7);
    b.call(fib);
    b.addi(Reg::new(5), Reg::new(5), 1);
    b.br_imm(Cond::Lt, Reg::new(5), 2_000, top);
    b.jmp(done);
    // fn fib(n): acc += n; if n > 0 { fib(n-1) }
    b.bind(fib).unwrap();
    let leaf = b.fresh_label("leaf");
    b.add(acc, acc, n);
    b.br_imm(Cond::Le, n, 0, leaf);
    b.subi(n, n, 1);
    b.call(fib);
    b.bind(leaf).unwrap();
    b.ret();
    b.bind(done).unwrap();
    b.out(acc);
    b.mov(tmp, acc);
    b.halt();
    let p = b.build().unwrap();
    check_transparent(&p, &[], &all_modes(20));
}
